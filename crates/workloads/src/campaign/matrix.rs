//! Declarative matrix execution: a parsed [`CampaignSpec`] resolved
//! against the workload registry, fanned out in parallel, verdicted
//! per-cell through the diff engine against each cell's declared
//! baseline.
//!
//! Everything downstream of the spec is deterministic: cell traces are
//! pure functions of their coordinates, archive paths are pure functions
//! of the same coordinates, and the summary (text table and JSON) is
//! ordered by cell index and carries no wall-clock times, worker counts
//! or engine labels — so two runs of the same spec, on any engine with
//! any parallelism, render byte-identical summaries. Timing belongs on
//! stderr; this module's outputs are the CI artifact.
//!
//! # Supervision
//!
//! Cells run under a supervision layer so one bad cell degrades, never
//! kills, the campaign:
//!
//! * **Isolation** — each attempt runs under `catch_unwind` plus a
//!   [`SimBudget`]: the spec's `event_budget` bounds scheduling points
//!   *inside* the simulation (deterministic and engine-identical), and
//!   `cell_deadline` arms a wall-clock watchdog that cancels the budget
//!   handle so a hung-but-scheduling cell unwinds cooperatively (a cell
//!   hard-hung outside any simulation is abandoned after a grace
//!   period). The result is a structured [`CellOutcome`], not a poisoned
//!   scope.
//! * **Retry & quarantine** — failed cells get `retries` extra attempts
//!   with exponential backoff; a cell that then passes is `flaky`, one
//!   that exhausts its attempts is `broken`. Both classes surface in the
//!   summary's quarantine ledger and in `summary.json`.
//! * **Crash safety** — traces, summaries and a checksummed
//!   `manifest.json` are written atomically (tmp file + rename), the
//!   manifest after every cell; [`run`] with `resume` validates archived
//!   traces against it and re-runs only missing or corrupt cells,
//!   producing byte-identical summaries to an uninterrupted run.
//! * **Exit contract** — 0 clean, [`REGRESSION_EXIT_CODE`] (3) when the
//!   gate trips, [`INCOMPLETE_EXIT_CODE`] (4) when any cell is broken or
//!   unverdictable (incomplete beats regressed: a gate over missing
//!   cells is not trustworthy).

use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use sgx_perf::analysis::diff::{DiffConfig, TraceDiff, Verdict, REGRESSION_EXIT_CODE};
use sgx_perf::{Logger, LoggerConfig, TraceDb};
use sim_core::campaign::{CampaignSpec, CellCoord, SwitchlessAxis};
use sim_core::fault::{fmt_duration, FaultPlan};
use sim_threads::{
    with_budget, with_engine, Engine, SimBudget, EVENT_BUDGET_EXHAUSTED, SIM_CANCELLED,
};

use super::Workload;
use crate::harness::Harness;
use crate::stressors::StressorConfig;
use crate::{chaos, fleet, racy_fixture, stressors, supervisor_loop};

/// A validated, runnable campaign: the spec plus its workload names
/// resolved against the registry.
#[derive(Debug, Clone)]
pub struct MatrixPlan {
    /// The spec (kept whole: the canonical form is the run's identity).
    pub spec: CampaignSpec,
    workloads: Vec<Workload>,
}

impl MatrixPlan {
    /// Resolves and validates a spec against the workload registry.
    ///
    /// # Errors
    ///
    /// Unknown workload names, and switchless axis points other than
    /// `off` combined with workloads that have no switchless route (only
    /// the dedicated stressors take the axis).
    pub fn from_spec(spec: CampaignSpec) -> Result<MatrixPlan, String> {
        let mut workloads = Vec::with_capacity(spec.workloads.len());
        for name in &spec.workloads {
            let Some(w) = Workload::parse(name) else {
                let known: Vec<&str> = Workload::ALL.iter().map(|w| w.label()).collect();
                return Err(format!(
                    "unknown workload `{name}` (known: {})",
                    known.join(", ")
                ));
            };
            if spec.switchless.iter().any(|s| *s != SwitchlessAxis::Off)
                && !matches!(w, Workload::Stress(_))
            {
                return Err(format!(
                    "workload `{name}` does not take the switchless axis \
                     (only the dedicated stressors do)"
                ));
            }
            workloads.push(w);
        }
        Ok(MatrixPlan { spec, workloads })
    }

    /// The expanded cell matrix (delegates to the spec).
    #[must_use]
    pub fn cells(&self) -> Vec<CellCoord> {
        self.spec.expand()
    }

    /// The deterministic archive filename of a cell.
    #[must_use]
    pub fn file_name(&self, c: &CellCoord) -> String {
        format!(
            "{}-{}-{}-{}-s{}.evdb",
            self.spec.workloads[c.workload],
            c.profile.file_label(),
            self.spec.plans[c.plan].0,
            c.switchless.file_label(),
            c.seed
        )
    }

    /// The fault plan a cell actually runs under: the named plan with the
    /// cell seed folded into its jitter seed, or `None` for an empty plan
    /// (preserving the empty-plan-is-invisible byte contract).
    #[must_use]
    pub fn effective_plan(&self, c: &CellCoord) -> Option<FaultPlan> {
        let (_, plan) = &self.spec.plans[c.plan];
        if plan.is_empty() {
            return None;
        }
        let mut plan = plan.clone();
        plan.seed ^= c.seed;
        Some(plan)
    }

    /// Executes one cell on the calling thread's current engine and
    /// returns the serialised trace. `attempt` is the zero-based retry
    /// counter the supervisor threads through so flaky fixtures (and any
    /// future attempt-aware workload) can observe it; deterministic
    /// workloads ignore it.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails under the cell's fault plan — the
    /// supervised runner in [`run`] catches this and records a
    /// [`CellOutcome`] instead of unwinding the campaign.
    #[must_use]
    pub fn run_cell(&self, c: &CellCoord, attempt: u32) -> Vec<u8> {
        let plan = self.effective_plan(c);
        let workers = match c.switchless {
            SwitchlessAxis::Off => None,
            SwitchlessAxis::On { workers } => Some(workers as usize),
        };
        match self.workloads[c.workload] {
            Workload::Stress(s) => stressors::trace(
                s,
                c.profile,
                plan.as_ref(),
                &StressorConfig {
                    seed: c.seed,
                    switchless_workers: workers,
                    attempt,
                },
            ),
            Workload::Fixture(f) => stressors::fixture_trace(
                f,
                c.profile,
                plan.as_ref(),
                &StressorConfig {
                    seed: c.seed,
                    switchless_workers: workers,
                    attempt,
                },
            ),
            Workload::Antipatterns => chaos::antipatterns_trace(c.profile, plan.as_ref()),
            Workload::Switchless => chaos::switchless_trace(c.profile, plan.as_ref()),
            Workload::Supervisor => {
                let harness = Harness::new(c.profile);
                let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
                supervisor_loop::run(&harness, 24, plan.as_ref(), None)
                    .expect("supervisor matrix cell");
                logger.finish().to_bytes()
            }
            Workload::Racy => {
                let harness = Harness::new(c.profile);
                let logger = Logger::attach(harness.runtime(), LoggerConfig::with_syncev());
                harness.machine().set_fault_plan(plan.as_ref());
                racy_fixture::run(&harness, &racy_fixture::RacyFixtureConfig::default())
                    .expect("racy matrix cell");
                logger.finish().to_bytes()
            }
            Workload::Fleet => {
                let cfg = fleet::FleetRunConfig {
                    seed: 0xF1EE7 ^ c.seed,
                    ..fleet::FleetRunConfig::tiny()
                };
                let run = fleet::run(c.profile, &cfg, plan.as_ref()).expect("fleet matrix cell");
                run.trace.to_bytes()
            }
        }
    }
}

/// Per-cell gate outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellVerdict {
    /// This cell *is* its group's baseline (diffed against itself only
    /// notionally; always neutral by construction).
    Baseline,
    /// Within the threshold of its baseline.
    Neutral,
    /// Better than its baseline beyond the threshold.
    Improved,
    /// Worse than its baseline beyond the threshold — trips the gate.
    Regressed,
    /// The cell produced no trace (panicked, timed out or hit an I/O
    /// error after exhausting its retries) — no diff is possible.
    Failed,
    /// The cell itself ran fine but its declared baseline failed, so it
    /// cannot be verdicted. Counts toward the incomplete exit code.
    Skipped,
}

impl CellVerdict {
    /// Fixed-width summary label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CellVerdict::Baseline => "baseline",
            CellVerdict::Neutral => "neutral",
            CellVerdict::Improved => "improved",
            CellVerdict::Regressed => "REGRESSED",
            CellVerdict::Failed => "FAILED",
            CellVerdict::Skipped => "skipped",
        }
    }
}

/// Exit status for a campaign that finished with broken or unverdictable
/// cells: the matrix is incomplete, so its gate verdict cannot be
/// trusted. Takes precedence over [`REGRESSION_EXIT_CODE`].
pub const INCOMPLETE_EXIT_CODE: u8 = 4;

/// How one supervised cell ended, after all retry attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell produced a trace.
    Ok,
    /// Every attempt panicked; carries the last panic message.
    Panicked(String),
    /// Every attempt exhausted its event budget or wall-clock deadline.
    TimedOut(String),
    /// The trace could not be archived; carries the last I/O error.
    IoError(String),
}

impl CellOutcome {
    /// Fixed summary label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok => "ok",
            CellOutcome::Panicked(_) => "panicked",
            CellOutcome::TimedOut(_) => "timed-out",
            CellOutcome::IoError(_) => "io-error",
        }
    }

    /// The failure detail ("" for [`CellOutcome::Ok`]).
    #[must_use]
    pub fn detail(&self) -> &str {
        match self {
            CellOutcome::Ok => "",
            CellOutcome::Panicked(m) | CellOutcome::TimedOut(m) | CellOutcome::IoError(m) => m,
        }
    }

    fn from_label(label: &str, detail: &str) -> Option<CellOutcome> {
        Some(match label {
            "ok" => CellOutcome::Ok,
            "panicked" => CellOutcome::Panicked(detail.to_string()),
            "timed-out" => CellOutcome::TimedOut(detail.to_string()),
            "io-error" => CellOutcome::IoError(detail.to_string()),
            _ => return None,
        })
    }
}

/// One completed, verdicted cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The cell coordinates.
    pub coord: CellCoord,
    /// Archive filename (pure function of the coordinates).
    pub file: String,
    /// Serialised trace size (0 for failed cells).
    pub bytes: usize,
    /// Fault rows recorded in the trace (0 for failed cells).
    pub fault_rows: usize,
    /// Diff verdict against the declared baseline cell.
    pub verdict: CellVerdict,
    /// Virtual-time speedup vs the baseline (>1 = faster than baseline;
    /// exactly 1 for baseline cells, 0 for failed/skipped cells).
    pub speedup: f64,
    /// How the supervised execution ended.
    pub outcome: CellOutcome,
    /// Attempts consumed (1 = passed first try).
    pub attempts: u32,
    /// True when the cell failed at least once but eventually produced a
    /// trace — quarantined as flaky in the summary ledger.
    pub flaky: bool,
}

/// A completed campaign matrix.
#[derive(Debug)]
pub struct MatrixRun {
    /// The validated plan that ran.
    pub plan: MatrixPlan,
    /// All cells, ordered by index.
    pub cells: Vec<MatrixCell>,
}

impl MatrixRun {
    /// Number of cells whose verdict tripped the gate.
    #[must_use]
    pub fn regressed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict == CellVerdict::Regressed)
            .count()
    }

    /// Number of broken cells (no trace after exhausting retries).
    #[must_use]
    pub fn broken(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.outcome != CellOutcome::Ok)
            .count()
    }

    /// Number of flaky cells (trace produced, but only on a retry).
    #[must_use]
    pub fn flaky(&self) -> usize {
        self.cells.iter().filter(|c| c.flaky).count()
    }

    /// True when any cell is broken or unverdictable — the matrix is
    /// incomplete and the gate verdict cannot be trusted.
    #[must_use]
    pub fn incomplete(&self) -> bool {
        self.cells.iter().any(|c| {
            c.outcome != CellOutcome::Ok
                || matches!(c.verdict, CellVerdict::Failed | CellVerdict::Skipped)
        })
    }

    /// CI-gate exit status: [`INCOMPLETE_EXIT_CODE`] when the matrix is
    /// incomplete (broken or unverdictable cells — this beats the gate:
    /// a regression verdict over missing cells is not trustworthy),
    /// otherwise [`REGRESSION_EXIT_CODE`] iff any cell regressed against
    /// its baseline, otherwise 0.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        if self.incomplete() {
            INCOMPLETE_EXIT_CODE
        } else if self.regressed() > 0 {
            REGRESSION_EXIT_CODE
        } else {
            0
        }
    }

    /// The byte-stable text summary: a fixed-order table over the cell
    /// matrix with no wall-clock times, worker counts or engine labels.
    #[must_use]
    pub fn render(&self) -> String {
        let spec = &self.plan.spec;
        let mut out = format!(
            "campaign \"{}\": {} workload(s) x {} profile(s) x {} plan(s) \
             x {} switchless x {} seed(s) = {} cell(s)\n",
            spec.name,
            spec.workloads.len(),
            spec.profiles.len(),
            spec.plans.len(),
            spec.switchless.len(),
            spec.seeds.len(),
            self.cells.len(),
        );
        out.push_str(&format!(
            "gate: threshold {}%, baseline faults={} seed={}\n",
            spec.threshold_pct, spec.baseline_plan, spec.baseline_seed,
        ));
        let deadline = if spec.cell_deadline.as_nanos() == 0 {
            "off".to_string()
        } else {
            fmt_duration(spec.cell_deadline)
        };
        let budget = if spec.event_budget == 0 {
            "unlimited".to_string()
        } else {
            spec.event_budget.to_string()
        };
        out.push_str(&format!(
            "supervision: cell_deadline={deadline}, retries={}, event_budget={budget}\n\n",
            spec.retries,
        ));
        let wl = col_width(spec.workloads.iter().map(String::len), "workload".len());
        let pl = col_width(spec.plans.iter().map(|(n, _)| n.len()), "plan".len());
        out.push_str(&format!(
            "{:>5}  {:<wl$}  {:<9}  {:<pl$}  {:<5}  {:>6}  {:>8}  {:>6}  {:<9}  {:>5}  {:>8}\n",
            "index",
            "workload",
            "profile",
            "plan",
            "swl",
            "seed",
            "bytes",
            "faults",
            "verdict",
            "tries",
            "speedup",
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:>5}  {:<wl$}  {:<9}  {:<pl$}  {:<5}  {:>6}  {:>8}  {:>6}  {:<9}  {:>5}  {:>8.3}\n",
                c.coord.index,
                spec.workloads[c.coord.workload],
                c.coord.profile.file_label(),
                spec.plans[c.coord.plan].0,
                c.coord.switchless.to_string(),
                c.coord.seed,
                c.bytes,
                c.fault_rows,
                c.verdict.label(),
                c.attempts,
                c.speedup,
            ));
        }
        if self.flaky() > 0 || self.broken() > 0 {
            out.push_str("\nquarantine:\n");
            for c in &self.cells {
                if c.flaky {
                    out.push_str(&format!(
                        "  flaky   {}: passed on attempt {}\n",
                        c.file, c.attempts,
                    ));
                }
            }
            for c in &self.cells {
                if c.outcome != CellOutcome::Ok {
                    out.push_str(&format!(
                        "  broken  {} ({}): {}\n",
                        c.file,
                        c.outcome.label(),
                        c.outcome.detail(),
                    ));
                }
            }
        }
        out.push_str(&format!(
            "\n{} regressed, {} broken, {} flaky cell(s) -> exit {}\n",
            self.regressed(),
            self.broken(),
            self.flaky(),
            self.exit_code(),
        ));
        out
    }

    /// The byte-stable machine-readable summary (hand-rolled JSON, same
    /// stability contract as [`MatrixRun::render`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let spec = &self.plan.spec;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", spec.name));
        out.push_str(&format!("  \"threshold_pct\": {},\n", spec.threshold_pct));
        out.push_str(&format!(
            "  \"baseline\": {{\"faults\": \"{}\", \"seed\": {}}},\n",
            spec.baseline_plan, spec.baseline_seed,
        ));
        out.push_str(&format!(
            "  \"supervision\": {{\"cell_deadline_ns\": {}, \"retries\": {}, \
             \"event_budget\": {}}},\n",
            spec.cell_deadline.as_nanos(),
            spec.retries,
            spec.event_budget,
        ));
        out.push_str(&format!("  \"cells\": {},\n", self.cells.len()));
        out.push_str(&format!("  \"regressed\": {},\n", self.regressed()));
        out.push_str(&format!("  \"broken\": {},\n", self.broken()));
        out.push_str(&format!("  \"flaky\": {},\n", self.flaky()));
        out.push_str(&format!("  \"exit_code\": {},\n", self.exit_code()));
        out.push_str("  \"results\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"index\": {}, \"workload\": \"{}\", \"profile\": \"{}\", \
                 \"plan\": \"{}\", \"switchless\": \"{}\", \"seed\": {}, \
                 \"baseline_index\": {}, \"file\": \"{}\", \"bytes\": {}, \
                 \"fault_rows\": {}, \"verdict\": \"{}\", \"speedup\": {:.3}, \
                 \"outcome\": \"{}\", \"detail\": \"{}\", \"attempts\": {}, \
                 \"flaky\": {}}}{}\n",
                c.coord.index,
                spec.workloads[c.coord.workload],
                c.coord.profile.file_label(),
                spec.plans[c.coord.plan].0,
                c.coord.switchless,
                c.coord.seed,
                c.coord.baseline,
                c.file,
                c.bytes,
                c.fault_rows,
                c.verdict.label(),
                c.speedup,
                c.outcome.label(),
                json_escape(c.outcome.detail()),
                c.attempts,
                c.flaky,
                comma,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn col_width(lens: impl Iterator<Item = usize>, header: usize) -> usize {
    lens.fold(header, usize::max)
}

/// FNV-1a 64 over a byte slice — the manifest's trace checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Minimal JSON string escaping (panic messages can carry anything).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts and unescapes the string value of `"key": "..."` from one
/// manifest line. Returns `None` on any malformation — the caller treats
/// that as a corrupt entry and re-runs the cell.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (&mut chars).take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts the raw (unquoted) value of `"key": value` from one manifest
/// line.
fn json_raw_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().to_string())
}

/// Atomically writes `bytes` to `path` via a sibling tmp file + rename,
/// so a crash mid-write can never leave a torn artifact under its final
/// name.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = path.with_file_name(format!("{name}.tmp"));
    std::fs::write(&tmp, bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
}

/// One row of `manifest.json`: a completed cell with enough information
/// to revalidate its archived trace on resume.
#[derive(Debug, Clone)]
struct ManifestEntry {
    index: usize,
    file: String,
    outcome: CellOutcome,
    attempts: u32,
    flaky: bool,
    bytes: usize,
    checksum: u64,
}

fn render_manifest(spec_checksum: u64, entries: &[ManifestEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"spec_checksum\": \"{spec_checksum:016x}\",\n"));
    out.push_str("  \"cells\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"index\": {}, \"file\": \"{}\", \"outcome\": \"{}\", \
             \"detail\": \"{}\", \"attempts\": {}, \"flaky\": {}, \
             \"bytes\": {}, \"checksum\": \"{:016x}\"}}{}\n",
            e.index,
            e.file,
            e.outcome.label(),
            json_escape(e.outcome.detail()),
            e.attempts,
            e.flaky,
            e.bytes,
            e.checksum,
            comma,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_manifest(text: &str) -> Option<(u64, Vec<ManifestEntry>)> {
    let mut spec_checksum = None;
    let mut entries = Vec::new();
    for line in text.lines() {
        let t = line.trim_start();
        if t.starts_with("\"spec_checksum\"") {
            spec_checksum = u64::from_str_radix(&json_str_field(line, "spec_checksum")?, 16).ok();
        } else if t.starts_with('{') && t.contains("\"index\"") {
            let outcome = CellOutcome::from_label(
                &json_str_field(line, "outcome")?,
                &json_str_field(line, "detail")?,
            )?;
            entries.push(ManifestEntry {
                index: json_raw_field(line, "index")?.parse().ok()?,
                file: json_str_field(line, "file")?,
                outcome,
                attempts: json_raw_field(line, "attempts")?.parse().ok()?,
                flaky: json_raw_field(line, "flaky")? == "true",
                bytes: json_raw_field(line, "bytes")?.parse().ok()?,
                checksum: u64::from_str_radix(&json_str_field(line, "checksum")?, 16).ok()?,
            });
        }
    }
    Some((spec_checksum?, entries))
}

/// The supervised result of one cell, after all attempts.
#[derive(Debug)]
struct CellResult {
    outcome: CellOutcome,
    trace: Option<Vec<u8>>,
    attempts: u32,
    flaky: bool,
    checksum: u64,
}

/// Maps a caught panic payload to a structured outcome: budget
/// exhaustion and supervisor cancellation read as timeouts, anything
/// else as a genuine panic.
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> CellOutcome {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    if msg.contains(EVENT_BUDGET_EXHAUSTED) || msg.contains(SIM_CANCELLED) {
        CellOutcome::TimedOut(msg)
    } else {
        CellOutcome::Panicked(msg)
    }
}

/// Runs one attempt of one cell under `catch_unwind` and the spec's
/// supervision budget. With a wall-clock deadline the attempt runs on
/// its own thread; on expiry the watchdog cancels the budget handle so
/// the simulation unwinds cooperatively at its next scheduling point,
/// and only a cell hard-hung outside any simulation is abandoned after a
/// grace period.
fn run_attempt(
    plan: &MatrixPlan,
    engine: Engine,
    coord: &CellCoord,
    attempt: u32,
) -> Result<Vec<u8>, CellOutcome> {
    let spec = &plan.spec;
    let budget = if spec.event_budget > 0 {
        SimBudget::with_events(spec.event_budget)
    } else {
        SimBudget::unlimited()
    };
    let deadline_ns = spec.cell_deadline.as_nanos();
    if deadline_ns == 0 {
        let body = AssertUnwindSafe(|| {
            with_engine(engine, || {
                with_budget(budget.clone(), || plan.run_cell(coord, attempt))
            })
        });
        return panic::catch_unwind(body).map_err(classify_panic);
    }
    let (tx, rx) = mpsc::channel();
    let watchdog = budget.clone();
    {
        let plan = plan.clone();
        let coord = *coord;
        std::thread::spawn(move || {
            let body = AssertUnwindSafe(|| {
                with_engine(engine, || {
                    with_budget(budget, || plan.run_cell(&coord, attempt))
                })
            });
            let _ = tx.send(panic::catch_unwind(body).map_err(classify_panic));
        });
    }
    match rx.recv_timeout(Duration::from_nanos(deadline_ns)) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            watchdog.cancel();
            // Grace period for the cooperative unwind; whatever the late
            // attempt reports is discarded in favour of the deterministic
            // deadline message. A cell hung outside any simulation never
            // observes the cancel and its thread is abandoned here.
            let _ = rx.recv_timeout(Duration::from_secs(2));
            Err(CellOutcome::TimedOut(
                "cell wall-clock deadline exceeded".to_string(),
            ))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(CellOutcome::Panicked(
            "cell worker thread vanished".to_string(),
        )),
    }
}

/// Runs one cell to completion: attempt, archive atomically, retry with
/// exponential backoff up to the spec's `retries`, classify.
fn execute_cell(
    plan: &MatrixPlan,
    engine: Engine,
    coord: &CellCoord,
    out_dir: Option<&Path>,
) -> CellResult {
    let max_attempts = plan.spec.retries.saturating_add(1);
    let mut attempt = 0u32;
    loop {
        let result = run_attempt(plan, engine, coord, attempt).and_then(|bytes| match out_dir {
            Some(dir) => write_atomic(&dir.join(plan.file_name(coord)), &bytes)
                .map(|()| bytes)
                .map_err(CellOutcome::IoError),
            None => Ok(bytes),
        });
        match result {
            Ok(bytes) => {
                return CellResult {
                    outcome: CellOutcome::Ok,
                    checksum: fnv1a(&bytes),
                    trace: Some(bytes),
                    attempts: attempt + 1,
                    flaky: attempt > 0,
                };
            }
            Err(outcome) => {
                attempt += 1;
                if attempt >= max_attempts {
                    return CellResult {
                        outcome,
                        trace: None,
                        attempts: attempt,
                        flaky: false,
                        checksum: 0,
                    };
                }
                std::thread::sleep(Duration::from_millis(
                    (10u64 << (attempt - 1).min(6)).min(1000),
                ));
            }
        }
    }
}

/// Salvages completed cells from an interrupted run's manifest. `Ok`
/// entries are revalidated against the archived bytes (existence,
/// length, checksum, parseability); failed entries are reused verbatim —
/// their retries are already spent, and reuse keeps the resumed summary
/// byte-identical. Anything missing or corrupt is simply left to re-run.
fn salvage(
    plan: &MatrixPlan,
    dir: &Path,
    spec_checksum: u64,
    cells: &[CellCoord],
    out: &mut [Option<CellResult>],
) -> Result<(), String> {
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                std::fs::remove_file(entry.path()).ok();
            }
        }
    }
    let Ok(text) = std::fs::read_to_string(dir.join("manifest.json")) else {
        return Ok(()); // no manifest — nothing to salvage
    };
    let Some((recorded, entries)) = parse_manifest(&text) else {
        return Ok(()); // corrupt manifest — re-run everything
    };
    if recorded != spec_checksum {
        return Err(format!(
            "resume: output dir {} was produced by a different spec \
             (manifest checksum {recorded:016x}, spec {spec_checksum:016x})",
            dir.display(),
        ));
    }
    for e in entries {
        let Some(coord) = cells.get(e.index) else {
            continue;
        };
        if plan.file_name(coord) != e.file {
            continue;
        }
        match &e.outcome {
            CellOutcome::Ok => {
                let Ok(bytes) = std::fs::read(dir.join(&e.file)) else {
                    continue;
                };
                if bytes.len() != e.bytes
                    || fnv1a(&bytes) != e.checksum
                    || TraceDb::from_bytes(&bytes).is_err()
                {
                    continue;
                }
                out[e.index] = Some(CellResult {
                    outcome: CellOutcome::Ok,
                    checksum: e.checksum,
                    trace: Some(bytes),
                    attempts: e.attempts,
                    flaky: e.flaky,
                });
            }
            failed => {
                out[e.index] = Some(CellResult {
                    outcome: failed.clone(),
                    trace: None,
                    attempts: e.attempts,
                    flaky: e.flaky,
                    checksum: 0,
                });
            }
        }
    }
    Ok(())
}

/// Runs the matrix: executes every cell in parallel on `engine` (claimed
/// off a shared counter by `jobs` workers — 0 means the spec's `jobs`,
/// which itself defaults to all cores), supervises each cell per the
/// spec's `[robustness]` section (see the module docs), archives one
/// trace per cell plus a checksummed `manifest.json` under `out_dir` (if
/// given), then verdicts every cell against its declared baseline
/// through the diff engine at the spec's threshold.
///
/// With `resume`, cells already completed by an interrupted run (per the
/// manifest) are revalidated and reused instead of re-run; the resulting
/// summaries are byte-identical to an uninterrupted run.
///
/// # Errors
///
/// Invalid invocations only — `resume` without an output directory, an
/// unusable output directory, or a resume over a different spec's
/// artifacts. Per-cell failures are *not* errors: they surface as
/// [`CellOutcome`]s, the quarantine ledger and the incomplete exit code.
pub fn run(
    plan: &MatrixPlan,
    engine: Engine,
    jobs: usize,
    out_dir: Option<&Path>,
    resume: bool,
) -> Result<MatrixRun, String> {
    let spec_checksum = fnv1a(plan.spec.to_string().as_bytes());
    if resume && out_dir.is_none() {
        return Err("resume needs an output directory (--out)".to_string());
    }
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create campaign output dir {}: {e}", dir.display()))?;
    }
    let cells = plan.cells();
    let mut salvaged: Vec<Option<CellResult>> = (0..cells.len()).map(|_| None).collect();
    if resume {
        salvage(
            plan,
            out_dir.expect("checked above"),
            spec_checksum,
            &cells,
            &mut salvaged,
        )?;
    }

    let jobs = match (jobs, plan.spec.jobs as usize) {
        (0, 0) => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        (0, n) | (n, _) => n,
    };
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<CellResult>>> = Mutex::new(salvaged);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(cells.len()).max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(coord) = cells.get(index) else {
                    break;
                };
                if results.lock().unwrap()[index].is_some() {
                    continue; // salvaged from the interrupted run
                }
                let result = execute_cell(plan, engine, coord, out_dir);
                let mut slots = results.lock().unwrap();
                slots[index] = Some(result);
                if let Some(dir) = out_dir {
                    // Rewrite the manifest after every completed cell (the
                    // lock keeps it consistent); failure to persist it is
                    // non-fatal — only resumability degrades.
                    let entries: Vec<ManifestEntry> = slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, r)| {
                            r.as_ref().map(|r| ManifestEntry {
                                index: i,
                                file: plan.file_name(&cells[i]),
                                outcome: r.outcome.clone(),
                                attempts: r.attempts,
                                flaky: r.flaky,
                                bytes: r.trace.as_ref().map_or(0, Vec::len),
                                checksum: r.checksum,
                            })
                        })
                        .collect();
                    let _ = write_atomic(
                        &dir.join("manifest.json"),
                        render_manifest(spec_checksum, &entries).as_bytes(),
                    );
                }
            });
        }
    });
    let results: Vec<CellResult> = results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every cell visited"))
        .collect();

    let diff_config = DiffConfig {
        threshold: f64::from(plan.spec.threshold_pct) / 100.0,
        ..DiffConfig::default()
    };
    let cells = cells
        .iter()
        .map(|coord| {
            let r = &results[coord.index];
            let (verdict, speedup, bytes, fault_rows) = match &r.trace {
                None => (CellVerdict::Failed, 0.0, 0, 0),
                Some(bytes) if coord.baseline == coord.index => (
                    CellVerdict::Baseline,
                    1.0,
                    bytes.len(),
                    chaos::fault_rows(bytes),
                ),
                Some(bytes) => match results[coord.baseline].trace.as_deref() {
                    // A healthy cell with a broken baseline cannot be
                    // verdicted — skipped, not failed.
                    None => (
                        CellVerdict::Skipped,
                        0.0,
                        bytes.len(),
                        chaos::fault_rows(bytes),
                    ),
                    Some(base) => {
                        let a = TraceDb::from_bytes(base).expect("baseline trace");
                        let b = TraceDb::from_bytes(bytes).expect("cell trace");
                        let diff = TraceDiff::compute(&a, &b, diff_config);
                        let verdict = match diff.verdict {
                            Verdict::Improvement => CellVerdict::Improved,
                            Verdict::Neutral => CellVerdict::Neutral,
                            Verdict::Regression => CellVerdict::Regressed,
                        };
                        (
                            verdict,
                            diff.speedup(),
                            bytes.len(),
                            chaos::fault_rows(bytes),
                        )
                    }
                },
            };
            MatrixCell {
                coord: *coord,
                file: plan.file_name(coord),
                bytes,
                fault_rows,
                verdict,
                speedup,
                outcome: r.outcome.clone(),
                attempts: r.attempts,
                flaky: r.flaky,
            }
        })
        .collect();
    let run = MatrixRun {
        plan: plan.clone(),
        cells,
    };
    if let Some(dir) = out_dir {
        write_atomic(&dir.join("summary.txt"), run.render().as_bytes())?;
        write_atomic(&dir.join("summary.json"), run.to_json().as_bytes())?;
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(extra: &str) -> CampaignSpec {
        CampaignSpec::parse(&format!(
            "[campaign]\nname = \"tiny\"\nthreshold = 25\n\
             [matrix]\nworkloads = [\"ecall_storm\", \"io_fsync_loop\"]\n\
             profiles = [\"unpatched\"]\nseeds = [1, 2]\n{extra}"
        ))
        .expect("test spec")
    }

    #[test]
    fn unknown_workloads_are_rejected_at_resolution() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"frobnicate\"]\n\
             profiles = [\"unpatched\"]\nseeds = [1]\n",
        )
        .unwrap();
        let e = MatrixPlan::from_spec(spec).unwrap_err();
        assert!(e.contains("unknown workload `frobnicate`"), "{e}");
        assert!(e.contains("epc_thrash"), "must list known names: {e}");
    }

    #[test]
    fn switchless_axis_is_stressor_only() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"antipatterns\"]\n\
             profiles = [\"unpatched\"]\nswitchless = [\"off\", \"on:1\"]\nseeds = [1]\n",
        )
        .unwrap();
        let e = MatrixPlan::from_spec(spec).unwrap_err();
        assert!(e.contains("does not take the switchless axis"), "{e}");
    }

    #[test]
    fn matrix_runs_verdict_and_stay_byte_stable() {
        let plan = MatrixPlan::from_spec(tiny_spec("")).unwrap();
        let a = run(&plan, Engine::Fast, 1, None, false).unwrap();
        let b = run(&plan, Engine::Fast, 4, None, false).unwrap();
        assert_eq!(a.cells.len(), 4);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.exit_code(), 0, "{}", a.render());
        // One baseline per (workload, profile, switchless) group.
        let baselines = a
            .cells
            .iter()
            .filter(|c| c.verdict == CellVerdict::Baseline)
            .count();
        assert_eq!(baselines, 2);
    }

    #[test]
    fn heavy_plans_trip_the_gate() {
        let plan = MatrixPlan::from_spec(tiny_spec(
            "[faults]\nnone = \"\"\n\
             storm = \"seed=3;ocall-timeout@call=2:delay=60us,times=3;aex-storm@call=12:count=6\"\n",
        ))
        .unwrap();
        let run = run(&plan, Engine::Fast, 0, None, false).unwrap();
        assert_eq!(run.cells.len(), 8);
        assert!(run.regressed() > 0, "{}", run.render());
        assert_eq!(run.exit_code(), REGRESSION_EXIT_CODE);
        // The render reflects the gate.
        assert!(run.render().contains("REGRESSED"), "{}", run.render());
    }

    #[test]
    fn archives_land_at_deterministic_paths() {
        let dir = std::env::temp_dir().join(format!("sgxperf-matrix-{}", std::process::id()));
        let plan = MatrixPlan::from_spec(tiny_spec("")).unwrap();
        let run = run(&plan, Engine::Fast, 2, Some(&dir), false).unwrap();
        for cell in &run.cells {
            let path = dir.join(&cell.file);
            let bytes = std::fs::read(&path).expect("archived trace");
            assert_eq!(bytes.len(), cell.bytes, "{}", path.display());
        }
        assert_eq!(
            std::fs::read_to_string(dir.join("summary.txt")).unwrap(),
            run.render()
        );
        assert_eq!(
            std::fs::read_to_string(dir.join("summary.json")).unwrap(),
            run.to_json()
        );
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let (checksum, entries) = parse_manifest(&manifest).expect("manifest parses");
        assert_eq!(checksum, fnv1a(plan.spec.to_string().as_bytes()));
        assert_eq!(entries.len(), run.cells.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn fixture_spec(workloads: &str, robustness: &str) -> MatrixPlan {
        let spec = CampaignSpec::parse(&format!(
            "[campaign]\nname = \"fixture\"\nthreshold = 25\n\
             [matrix]\nworkloads = [{workloads}]\n\
             profiles = [\"unpatched\"]\nseeds = [1]\n\
             [robustness]\n{robustness}"
        ))
        .expect("fixture spec");
        MatrixPlan::from_spec(spec).expect("fixture plan")
    }

    #[test]
    fn poisoned_cells_leave_siblings_intact() {
        let plan = fixture_spec("\"ecall_storm\", \"panicking\"", "retries = 0\n");
        let run = run(&plan, Engine::Fast, 2, None, false).unwrap();
        assert_eq!(run.cells.len(), 2);
        let healthy = &run.cells[0];
        assert_eq!(healthy.outcome, CellOutcome::Ok);
        assert_eq!(healthy.verdict, CellVerdict::Baseline);
        assert!(healthy.bytes > 0);
        let poisoned = &run.cells[1];
        assert_eq!(poisoned.verdict, CellVerdict::Failed);
        assert!(
            matches!(poisoned.outcome, CellOutcome::Panicked(_)),
            "{:?}",
            poisoned.outcome
        );
        assert!(poisoned
            .outcome
            .detail()
            .contains(stressors::PANICKING_FIXTURE_MSG));
        assert_eq!(run.exit_code(), INCOMPLETE_EXIT_CODE);
        let text = run.render();
        assert!(text.contains("quarantine:"), "{text}");
        assert!(text.contains("broken"), "{text}");
    }

    #[test]
    fn flaky_cells_recover_on_retry_and_land_in_the_ledger() {
        let plan = fixture_spec("\"flaky\"", "retries = 2\n");
        let run = run(&plan, Engine::Fast, 1, None, false).unwrap();
        let c = &run.cells[0];
        assert_eq!(c.outcome, CellOutcome::Ok);
        assert!(c.flaky);
        assert_eq!(c.attempts, 2, "flaky fixture passes on its second try");
        assert_eq!(c.verdict, CellVerdict::Baseline);
        assert_eq!(run.exit_code(), 0, "flaky alone is not incomplete");
        let text = run.render();
        assert!(text.contains("flaky"), "{text}");
        assert!(text.contains("passed on attempt 2"), "{text}");
    }

    #[test]
    fn hanging_cells_time_out_deterministically_under_the_event_budget() {
        let plan = fixture_spec("\"hanging\"", "retries = 0\nevent_budget = 2000\n");
        let a = run(&plan, Engine::Fast, 1, None, false).unwrap();
        let c = &a.cells[0];
        assert!(
            matches!(c.outcome, CellOutcome::TimedOut(_)),
            "{:?}",
            c.outcome
        );
        assert!(c.outcome.detail().contains(EVENT_BUDGET_EXHAUSTED));
        assert_eq!(a.exit_code(), INCOMPLETE_EXIT_CODE);
        // The virtual kill is deterministic: a second run renders the
        // same bytes.
        let b = run(&plan, Engine::Fast, 1, None, false).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn resume_reruns_only_missing_or_corrupt_cells_byte_identically() {
        let dir = std::env::temp_dir().join(format!("sgxperf-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let plan = MatrixPlan::from_spec(tiny_spec("")).unwrap();
        let full = run(&plan, Engine::Fast, 2, Some(&dir), false).unwrap();
        // Fabricate an interrupted run: one trace missing, one corrupt.
        std::fs::remove_file(dir.join(&full.cells[1].file)).unwrap();
        std::fs::write(dir.join(&full.cells[2].file), b"garbage").unwrap();
        let resumed = run(&plan, Engine::Fast, 2, Some(&dir), true).unwrap();
        assert_eq!(resumed.render(), full.render());
        assert_eq!(resumed.to_json(), full.to_json());
        for cell in &resumed.cells {
            let bytes = std::fs::read(dir.join(&cell.file)).expect("restored trace");
            assert_eq!(bytes.len(), cell.bytes, "{}", cell.file);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_foreign_output_dir() {
        let dir = std::env::temp_dir().join(format!("sgxperf-foreign-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let plan = MatrixPlan::from_spec(tiny_spec("")).unwrap();
        run(&plan, Engine::Fast, 2, Some(&dir), false).unwrap();
        let other = MatrixPlan::from_spec(tiny_spec(
            "[faults]\nnone = \"\"\nlight = \"seed=9;ocall-fail@call=3:times=1\"\n",
        ))
        .unwrap();
        let e = run(&other, Engine::Fast, 2, Some(&dir), true).unwrap_err();
        assert!(e.contains("different spec"), "{e}");
        let e = run(&plan, Engine::Fast, 2, None, true).unwrap_err();
        assert!(e.contains("output directory"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_round_trips_through_its_parser() {
        let entries = vec![
            ManifestEntry {
                index: 0,
                file: "a.evdb".to_string(),
                outcome: CellOutcome::Ok,
                attempts: 1,
                flaky: false,
                bytes: 42,
                checksum: 0xdead_beef,
            },
            ManifestEntry {
                index: 3,
                file: "b.evdb".to_string(),
                outcome: CellOutcome::Panicked("tab\there \"quote\" \\ back\nline".to_string()),
                attempts: 3,
                flaky: false,
                bytes: 0,
                checksum: 0,
            },
        ];
        let text = render_manifest(7, &entries);
        let (checksum, parsed) = parse_manifest(&text).expect("round trip");
        assert_eq!(checksum, 7);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].index, 0);
        assert_eq!(parsed[0].checksum, 0xdead_beef);
        assert_eq!(parsed[1].outcome, entries[1].outcome);
        assert_eq!(parsed[1].attempts, 3);
    }

    #[test]
    fn effective_plans_fold_the_seed_but_keep_empty_plans_invisible() {
        let plan = MatrixPlan::from_spec(tiny_spec(
            "[faults]\nnone = \"\"\nlight = \"seed=9;ocall-fail@call=3:times=1\"\n",
        ))
        .unwrap();
        let cells = plan.cells();
        let empty = cells
            .iter()
            .find(|c| plan.spec.plans[c.plan].0 == "none")
            .unwrap();
        assert_eq!(plan.effective_plan(empty), None);
        let seeded: Vec<&CellCoord> = cells
            .iter()
            .filter(|c| plan.spec.plans[c.plan].0 == "light")
            .collect();
        let p1 = plan.effective_plan(seeded[0]).unwrap();
        let p2 = plan.effective_plan(seeded[1]).unwrap();
        assert_eq!(p1.seed, 9 ^ seeded[0].seed);
        assert_eq!(p1.faults, p2.faults, "only the jitter seed varies");
    }
}
