//! Declarative matrix execution: a parsed [`CampaignSpec`] resolved
//! against the workload registry, fanned out in parallel, verdicted
//! per-cell through the diff engine against each cell's declared
//! baseline.
//!
//! Everything downstream of the spec is deterministic: cell traces are
//! pure functions of their coordinates, archive paths are pure functions
//! of the same coordinates, and the summary (text table and JSON) is
//! ordered by cell index and carries no wall-clock times, worker counts
//! or engine labels — so two runs of the same spec, on any engine with
//! any parallelism, render byte-identical summaries. Timing belongs on
//! stderr; this module's outputs are the CI artifact.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sgx_perf::analysis::diff::{DiffConfig, TraceDiff, Verdict, REGRESSION_EXIT_CODE};
use sgx_perf::{Logger, LoggerConfig, TraceDb};
use sim_core::campaign::{CampaignSpec, CellCoord, SwitchlessAxis};
use sim_core::fault::FaultPlan;
use sim_threads::{with_engine, Engine};

use super::Workload;
use crate::harness::Harness;
use crate::stressors::StressorConfig;
use crate::{chaos, fleet, racy_fixture, stressors, supervisor_loop};

/// A validated, runnable campaign: the spec plus its workload names
/// resolved against the registry.
#[derive(Debug, Clone)]
pub struct MatrixPlan {
    /// The spec (kept whole: the canonical form is the run's identity).
    pub spec: CampaignSpec,
    workloads: Vec<Workload>,
}

impl MatrixPlan {
    /// Resolves and validates a spec against the workload registry.
    ///
    /// # Errors
    ///
    /// Unknown workload names, and switchless axis points other than
    /// `off` combined with workloads that have no switchless route (only
    /// the dedicated stressors take the axis).
    pub fn from_spec(spec: CampaignSpec) -> Result<MatrixPlan, String> {
        let mut workloads = Vec::with_capacity(spec.workloads.len());
        for name in &spec.workloads {
            let Some(w) = Workload::parse(name) else {
                let known: Vec<&str> = Workload::ALL.iter().map(|w| w.label()).collect();
                return Err(format!(
                    "unknown workload `{name}` (known: {})",
                    known.join(", ")
                ));
            };
            if spec.switchless.iter().any(|s| *s != SwitchlessAxis::Off)
                && !matches!(w, Workload::Stress(_))
            {
                return Err(format!(
                    "workload `{name}` does not take the switchless axis \
                     (only the dedicated stressors do)"
                ));
            }
            workloads.push(w);
        }
        Ok(MatrixPlan { spec, workloads })
    }

    /// The expanded cell matrix (delegates to the spec).
    #[must_use]
    pub fn cells(&self) -> Vec<CellCoord> {
        self.spec.expand()
    }

    /// The deterministic archive filename of a cell.
    #[must_use]
    pub fn file_name(&self, c: &CellCoord) -> String {
        format!(
            "{}-{}-{}-{}-s{}.evdb",
            self.spec.workloads[c.workload],
            c.profile.file_label(),
            self.spec.plans[c.plan].0,
            c.switchless.file_label(),
            c.seed
        )
    }

    /// The fault plan a cell actually runs under: the named plan with the
    /// cell seed folded into its jitter seed, or `None` for an empty plan
    /// (preserving the empty-plan-is-invisible byte contract).
    #[must_use]
    pub fn effective_plan(&self, c: &CellCoord) -> Option<FaultPlan> {
        let (_, plan) = &self.spec.plans[c.plan];
        if plan.is_empty() {
            return None;
        }
        let mut plan = plan.clone();
        plan.seed ^= c.seed;
        Some(plan)
    }

    /// Executes one cell on the calling thread's current engine and
    /// returns the serialised trace.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails under the cell's fault plan —
    /// campaign plans must be recoverable configurations.
    #[must_use]
    pub fn run_cell(&self, c: &CellCoord) -> Vec<u8> {
        let plan = self.effective_plan(c);
        let workers = match c.switchless {
            SwitchlessAxis::Off => None,
            SwitchlessAxis::On { workers } => Some(workers as usize),
        };
        match self.workloads[c.workload] {
            Workload::Stress(s) => stressors::trace(
                s,
                c.profile,
                plan.as_ref(),
                &StressorConfig {
                    seed: c.seed,
                    switchless_workers: workers,
                },
            ),
            Workload::Antipatterns => chaos::antipatterns_trace(c.profile, plan.as_ref()),
            Workload::Switchless => chaos::switchless_trace(c.profile, plan.as_ref()),
            Workload::Supervisor => {
                let harness = Harness::new(c.profile);
                let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
                supervisor_loop::run(&harness, 24, plan.as_ref(), None)
                    .expect("supervisor matrix cell");
                logger.finish().to_bytes()
            }
            Workload::Racy => {
                let harness = Harness::new(c.profile);
                let logger = Logger::attach(harness.runtime(), LoggerConfig::with_syncev());
                harness.machine().set_fault_plan(plan.as_ref());
                racy_fixture::run(&harness, &racy_fixture::RacyFixtureConfig::default())
                    .expect("racy matrix cell");
                logger.finish().to_bytes()
            }
            Workload::Fleet => {
                let cfg = fleet::FleetRunConfig {
                    seed: 0xF1EE7 ^ c.seed,
                    ..fleet::FleetRunConfig::tiny()
                };
                let run = fleet::run(c.profile, &cfg, plan.as_ref()).expect("fleet matrix cell");
                run.trace.to_bytes()
            }
        }
    }
}

/// Per-cell gate outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellVerdict {
    /// This cell *is* its group's baseline (diffed against itself only
    /// notionally; always neutral by construction).
    Baseline,
    /// Within the threshold of its baseline.
    Neutral,
    /// Better than its baseline beyond the threshold.
    Improved,
    /// Worse than its baseline beyond the threshold — trips the gate.
    Regressed,
}

impl CellVerdict {
    /// Fixed-width summary label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CellVerdict::Baseline => "baseline",
            CellVerdict::Neutral => "neutral",
            CellVerdict::Improved => "improved",
            CellVerdict::Regressed => "REGRESSED",
        }
    }
}

/// One completed, verdicted cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The cell coordinates.
    pub coord: CellCoord,
    /// Archive filename (pure function of the coordinates).
    pub file: String,
    /// Serialised trace size.
    pub bytes: usize,
    /// Fault rows recorded in the trace.
    pub fault_rows: usize,
    /// Diff verdict against the declared baseline cell.
    pub verdict: CellVerdict,
    /// Virtual-time speedup vs the baseline (>1 = faster than baseline;
    /// exactly 1 for baseline cells).
    pub speedup: f64,
}

/// A completed campaign matrix.
#[derive(Debug)]
pub struct MatrixRun {
    /// The validated plan that ran.
    pub plan: MatrixPlan,
    /// All cells, ordered by index.
    pub cells: Vec<MatrixCell>,
}

impl MatrixRun {
    /// Number of cells whose verdict tripped the gate.
    #[must_use]
    pub fn regressed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict == CellVerdict::Regressed)
            .count()
    }

    /// CI-gate exit status: [`REGRESSION_EXIT_CODE`] iff any cell
    /// regressed against its baseline, 0 otherwise.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        if self.regressed() > 0 {
            REGRESSION_EXIT_CODE
        } else {
            0
        }
    }

    /// The byte-stable text summary: a fixed-order table over the cell
    /// matrix with no wall-clock times, worker counts or engine labels.
    #[must_use]
    pub fn render(&self) -> String {
        let spec = &self.plan.spec;
        let mut out = format!(
            "campaign \"{}\": {} workload(s) x {} profile(s) x {} plan(s) \
             x {} switchless x {} seed(s) = {} cell(s)\n",
            spec.name,
            spec.workloads.len(),
            spec.profiles.len(),
            spec.plans.len(),
            spec.switchless.len(),
            spec.seeds.len(),
            self.cells.len(),
        );
        out.push_str(&format!(
            "gate: threshold {}%, baseline faults={} seed={}\n\n",
            spec.threshold_pct, spec.baseline_plan, spec.baseline_seed,
        ));
        let wl = col_width(spec.workloads.iter().map(String::len), "workload".len());
        let pl = col_width(spec.plans.iter().map(|(n, _)| n.len()), "plan".len());
        out.push_str(&format!(
            "{:>5}  {:<wl$}  {:<9}  {:<pl$}  {:<5}  {:>6}  {:>8}  {:>6}  {:<9}  {:>8}\n",
            "index",
            "workload",
            "profile",
            "plan",
            "swl",
            "seed",
            "bytes",
            "faults",
            "verdict",
            "speedup",
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:>5}  {:<wl$}  {:<9}  {:<pl$}  {:<5}  {:>6}  {:>8}  {:>6}  {:<9}  {:>8.3}\n",
                c.coord.index,
                spec.workloads[c.coord.workload],
                c.coord.profile.file_label(),
                spec.plans[c.coord.plan].0,
                c.coord.switchless.to_string(),
                c.coord.seed,
                c.bytes,
                c.fault_rows,
                c.verdict.label(),
                c.speedup,
            ));
        }
        out.push_str(&format!(
            "\n{} regressed cell(s) -> exit {}\n",
            self.regressed(),
            self.exit_code(),
        ));
        out
    }

    /// The byte-stable machine-readable summary (hand-rolled JSON, same
    /// stability contract as [`MatrixRun::render`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let spec = &self.plan.spec;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", spec.name));
        out.push_str(&format!("  \"threshold_pct\": {},\n", spec.threshold_pct));
        out.push_str(&format!(
            "  \"baseline\": {{\"faults\": \"{}\", \"seed\": {}}},\n",
            spec.baseline_plan, spec.baseline_seed,
        ));
        out.push_str(&format!("  \"cells\": {},\n", self.cells.len()));
        out.push_str(&format!("  \"regressed\": {},\n", self.regressed()));
        out.push_str(&format!("  \"exit_code\": {},\n", self.exit_code()));
        out.push_str("  \"results\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"index\": {}, \"workload\": \"{}\", \"profile\": \"{}\", \
                 \"plan\": \"{}\", \"switchless\": \"{}\", \"seed\": {}, \
                 \"baseline_index\": {}, \"file\": \"{}\", \"bytes\": {}, \
                 \"fault_rows\": {}, \"verdict\": \"{}\", \"speedup\": {:.3}}}{}\n",
                c.coord.index,
                spec.workloads[c.coord.workload],
                c.coord.profile.file_label(),
                spec.plans[c.coord.plan].0,
                c.coord.switchless,
                c.coord.seed,
                c.coord.baseline,
                c.file,
                c.bytes,
                c.fault_rows,
                c.verdict.label(),
                c.speedup,
                comma,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn col_width(lens: impl Iterator<Item = usize>, header: usize) -> usize {
    lens.fold(header, usize::max)
}

/// Runs the matrix: executes every cell in parallel on `engine` (claimed
/// off a shared counter by `jobs` workers — 0 means the spec's `jobs`,
/// which itself defaults to all cores), archives one trace per cell under
/// `out_dir` (if given), then verdicts every cell against its declared
/// baseline through the diff engine at the spec's threshold.
///
/// # Panics
///
/// Panics if a cell fails or an output file cannot be written.
#[must_use]
pub fn run(plan: &MatrixPlan, engine: Engine, jobs: usize, out_dir: Option<&Path>) -> MatrixRun {
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).expect("create campaign output dir");
    }
    let cells = plan.cells();
    let jobs = match (jobs, plan.spec.jobs as usize) {
        (0, 0) => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        (0, n) | (n, _) => n,
    };
    let next = AtomicUsize::new(0);
    let traces: Mutex<Vec<Option<Vec<u8>>>> = Mutex::new(vec![None; cells.len()]);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(cells.len()).max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(coord) = cells.get(index) else {
                    break;
                };
                let bytes = with_engine(engine, || plan.run_cell(coord));
                if let Some(dir) = out_dir {
                    std::fs::write(dir.join(plan.file_name(coord)), &bytes)
                        .expect("write cell trace");
                }
                traces.lock().unwrap()[index] = Some(bytes);
            });
        }
    });
    let traces: Vec<Vec<u8>> = traces
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|t| t.expect("all cells ran"))
        .collect();

    let diff_config = DiffConfig {
        threshold: f64::from(plan.spec.threshold_pct) / 100.0,
        ..DiffConfig::default()
    };
    let cells = cells
        .iter()
        .map(|coord| {
            let bytes = &traces[coord.index];
            let (verdict, speedup) = if coord.baseline == coord.index {
                (CellVerdict::Baseline, 1.0)
            } else {
                let a = TraceDb::from_bytes(&traces[coord.baseline]).expect("baseline trace");
                let b = TraceDb::from_bytes(bytes).expect("cell trace");
                let diff = TraceDiff::compute(&a, &b, diff_config);
                let verdict = match diff.verdict {
                    Verdict::Improvement => CellVerdict::Improved,
                    Verdict::Neutral => CellVerdict::Neutral,
                    Verdict::Regression => CellVerdict::Regressed,
                };
                (verdict, diff.speedup())
            };
            MatrixCell {
                coord: *coord,
                file: plan.file_name(coord),
                bytes: bytes.len(),
                fault_rows: chaos::fault_rows(bytes),
                verdict,
                speedup,
            }
        })
        .collect();
    let run = MatrixRun {
        plan: plan.clone(),
        cells,
    };
    if let Some(dir) = out_dir {
        std::fs::write(dir.join("summary.txt"), run.render()).expect("write summary.txt");
        std::fs::write(dir.join("summary.json"), run.to_json()).expect("write summary.json");
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(extra: &str) -> CampaignSpec {
        CampaignSpec::parse(&format!(
            "[campaign]\nname = \"tiny\"\nthreshold = 25\n\
             [matrix]\nworkloads = [\"ecall_storm\", \"io_fsync_loop\"]\n\
             profiles = [\"unpatched\"]\nseeds = [1, 2]\n{extra}"
        ))
        .expect("test spec")
    }

    #[test]
    fn unknown_workloads_are_rejected_at_resolution() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"frobnicate\"]\n\
             profiles = [\"unpatched\"]\nseeds = [1]\n",
        )
        .unwrap();
        let e = MatrixPlan::from_spec(spec).unwrap_err();
        assert!(e.contains("unknown workload `frobnicate`"), "{e}");
        assert!(e.contains("epc_thrash"), "must list known names: {e}");
    }

    #[test]
    fn switchless_axis_is_stressor_only() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"antipatterns\"]\n\
             profiles = [\"unpatched\"]\nswitchless = [\"off\", \"on:1\"]\nseeds = [1]\n",
        )
        .unwrap();
        let e = MatrixPlan::from_spec(spec).unwrap_err();
        assert!(e.contains("does not take the switchless axis"), "{e}");
    }

    #[test]
    fn matrix_runs_verdict_and_stay_byte_stable() {
        let plan = MatrixPlan::from_spec(tiny_spec("")).unwrap();
        let a = run(&plan, Engine::Fast, 1, None);
        let b = run(&plan, Engine::Fast, 4, None);
        assert_eq!(a.cells.len(), 4);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.exit_code(), 0, "{}", a.render());
        // One baseline per (workload, profile, switchless) group.
        let baselines = a
            .cells
            .iter()
            .filter(|c| c.verdict == CellVerdict::Baseline)
            .count();
        assert_eq!(baselines, 2);
    }

    #[test]
    fn heavy_plans_trip_the_gate() {
        let plan = MatrixPlan::from_spec(tiny_spec(
            "[faults]\nnone = \"\"\n\
             storm = \"seed=3;ocall-timeout@call=2:delay=60us,times=3;aex-storm@call=12:count=6\"\n",
        ))
        .unwrap();
        let run = run(&plan, Engine::Fast, 0, None);
        assert_eq!(run.cells.len(), 8);
        assert!(run.regressed() > 0, "{}", run.render());
        assert_eq!(run.exit_code(), REGRESSION_EXIT_CODE);
        // The render reflects the gate.
        assert!(run.render().contains("REGRESSED"), "{}", run.render());
    }

    #[test]
    fn archives_land_at_deterministic_paths() {
        let dir = std::env::temp_dir().join(format!("sgxperf-matrix-{}", std::process::id()));
        let plan = MatrixPlan::from_spec(tiny_spec("")).unwrap();
        let run = run(&plan, Engine::Fast, 2, Some(&dir));
        for cell in &run.cells {
            let path = dir.join(&cell.file);
            let bytes = std::fs::read(&path).expect("archived trace");
            assert_eq!(bytes.len(), cell.bytes, "{}", path.display());
        }
        assert_eq!(
            std::fs::read_to_string(dir.join("summary.txt")).unwrap(),
            run.render()
        );
        assert_eq!(
            std::fs::read_to_string(dir.join("summary.json")).unwrap(),
            run.to_json()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn effective_plans_fold_the_seed_but_keep_empty_plans_invisible() {
        let plan = MatrixPlan::from_spec(tiny_spec(
            "[faults]\nnone = \"\"\nlight = \"seed=9;ocall-fail@call=3:times=1\"\n",
        ))
        .unwrap();
        let cells = plan.cells();
        let empty = cells
            .iter()
            .find(|c| plan.spec.plans[c.plan].0 == "none")
            .unwrap();
        assert_eq!(plan.effective_plan(empty), None);
        let seeded: Vec<&CellCoord> = cells
            .iter()
            .filter(|c| plan.spec.plans[c.plan].0 == "light")
            .collect();
        let p1 = plan.effective_plan(seeded[0]).unwrap();
        let p2 = plan.effective_plan(seeded[1]).unwrap();
        assert_eq!(p1.seed, 9 ^ seeded[0].seed);
        assert_eq!(p1.faults, p2.faults, "only the jitter seed varies");
    }
}
