//! Parallel campaign runner: a (workload × profile × seed) matrix of
//! independent simulation runs fanned out across real cores.
//!
//! Every run in this repo is deterministic — the whole simulation lives on
//! one virtual clock and (since the coroutine engine) one OS thread — so a
//! campaign is embarrassingly parallel: each cell is a pure function of
//! its coordinates, its output path is a pure function of the same
//! coordinates, and the merged summary is ordered by cell index, making
//! the campaign's *entire* output byte-stable no matter how many workers
//! ran it or how they interleaved.
//!
//! Seeds double as fault-plan selectors: seed 0 is the fault-free
//! baseline, any other seed derives a workload-appropriate deterministic
//! fault plan (see [`Cell::plan_label`]). With [`CampaignConfig::verify`]
//! set, every cell is executed a second time on the legacy engine and the
//! two traces are asserted byte-identical — the differential oracle at
//! campaign scale.

pub mod matrix;

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sgx_perf::{Logger, LoggerConfig};
use sim_core::HwProfile;
use sim_threads::{with_engine, Engine};

use crate::harness::Harness;
use crate::stressors::{Stressor, StressorConfig};
use crate::{chaos, fleet, racy_fixture, stressors, supervisor_loop};

/// A campaign-runnable workload. Each produces serialised trace bytes
/// from (profile, seed) alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Classic-path fixture (SISC, SNC, paging) via [`chaos`].
    Antipatterns,
    /// Switchless request server via [`chaos`].
    Switchless,
    /// Supervised server with mid-run enclave loss.
    Supervisor,
    /// Race fixture with the sync-event channel enabled.
    Racy,
    /// Fleet scenario at unit-test scale.
    Fleet,
    /// A dedicated single-axis stressor (see [`stressors`]).
    Stress(Stressor),
    /// A test-only fault fixture (see [`stressors::FaultFixture`]):
    /// resolvable by name for supervision tests, but excluded from
    /// [`Workload::ALL`] so default campaigns stay healthy.
    Fixture(stressors::FaultFixture),
}

impl Workload {
    /// Every campaign-runnable workload.
    pub const ALL: [Workload; 9] = [
        Workload::Antipatterns,
        Workload::Switchless,
        Workload::Supervisor,
        Workload::Racy,
        Workload::Fleet,
        Workload::Stress(Stressor::EpcThrash),
        Workload::Stress(Stressor::EcallStorm),
        Workload::Stress(Stressor::IoFsyncLoop),
        Workload::Stress(Stressor::CpuCompute),
    ];

    /// Filename-safe label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Antipatterns => "antipatterns",
            Workload::Switchless => "switchless",
            Workload::Supervisor => "supervisor",
            Workload::Racy => "racy",
            Workload::Fleet => "fleet",
            Workload::Stress(s) => s.label(),
            Workload::Fixture(f) => f.label(),
        }
    }

    /// Parses a workload name as written in campaign specs and CLI flags
    /// — the inverse of [`Workload::label`]. Fault fixtures resolve here
    /// too, even though they are not in [`Workload::ALL`].
    pub fn parse(name: &str) -> Option<Workload> {
        Workload::ALL
            .into_iter()
            .find(|w| w.label() == name)
            .or_else(|| stressors::FaultFixture::parse(name).map(Workload::Fixture))
    }
}

/// Filename-safe hardware profile label (the display labels carry `+`).
pub fn profile_file_label(profile: HwProfile) -> &'static str {
    match profile {
        HwProfile::Unpatched => "unpatched",
        HwProfile::Spectre => "spectre",
        HwProfile::Foreshadow => "l1tf",
    }
}

/// One point of the campaign matrix.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    pub workload: Workload,
    pub profile: HwProfile,
    /// 0 = fault-free baseline; anything else seeds a deterministic
    /// workload-appropriate fault plan.
    pub seed: u64,
}

impl Cell {
    /// The deterministic output filename for this cell.
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-s{}.evdb",
            self.workload.label(),
            profile_file_label(self.profile),
            self.seed
        )
    }

    /// Human-readable description of the fault plan this cell's seed
    /// selects.
    pub fn plan_label(&self) -> &'static str {
        if self.seed == 0 {
            return "none";
        }
        match self.workload {
            Workload::Antipatterns | Workload::Switchless | Workload::Stress(_) => {
                "random_plan(seed)"
            }
            Workload::Supervisor => "loss_plan(seed)",
            Workload::Racy => "none (seed varies rounds)",
            Workload::Fleet => "chaos_plan(seed)",
            Workload::Fixture(_) => "none",
        }
    }

    /// Executes this cell on the calling thread's current engine and
    /// returns the serialised trace.
    ///
    /// # Panics
    ///
    /// Panics if the underlying workload fails — campaign cells are all
    /// recoverable configurations, so a failure is a bug.
    pub fn run(&self) -> Vec<u8> {
        match self.workload {
            Workload::Antipatterns => {
                let plan = (self.seed != 0).then(|| chaos::random_plan(self.seed));
                chaos::antipatterns_trace(self.profile, plan.as_ref())
            }
            Workload::Switchless => {
                let plan = (self.seed != 0).then(|| chaos::random_plan(self.seed));
                chaos::switchless_trace(self.profile, plan.as_ref())
            }
            Workload::Supervisor => {
                // Entry counting starts at arming: keep the loss inside
                // the 24-request run, never on the session-init entry.
                let plan = (self.seed != 0).then(|| supervisor_loop::loss_plan(2 + self.seed % 16));
                let harness = Harness::new(self.profile);
                let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
                supervisor_loop::run(&harness, 24, plan.as_ref(), None)
                    .expect("supervisor campaign cell");
                logger.finish().to_bytes()
            }
            Workload::Racy => {
                let harness = Harness::new(self.profile);
                let logger = Logger::attach(harness.runtime(), LoggerConfig::with_syncev());
                let config = racy_fixture::RacyFixtureConfig {
                    rounds: 4 + self.seed % 4,
                };
                racy_fixture::run(&harness, &config).expect("racy campaign cell");
                logger.finish().to_bytes()
            }
            Workload::Fleet => {
                let cfg = fleet::FleetRunConfig {
                    seed: 0xF1EE7 ^ self.seed,
                    ..fleet::FleetRunConfig::tiny()
                };
                let plan = (self.seed != 0).then(|| fleet::chaos_plan(&cfg));
                let run = fleet::run(self.profile, &cfg, plan.as_ref()).expect("fleet cell");
                run.trace.to_bytes()
            }
            Workload::Stress(stressor) => {
                let plan = (self.seed != 0).then(|| chaos::random_plan(self.seed));
                stressors::trace(
                    stressor,
                    self.profile,
                    plan.as_ref(),
                    &StressorConfig {
                        seed: self.seed,
                        switchless_workers: None,
                        attempt: 0,
                    },
                )
            }
            // Fixtures fail by design; in this unsupervised runner they
            // simply panic (the matrix runner is the supervised path).
            Workload::Fixture(fixture) => stressors::fixture_trace(
                fixture,
                self.profile,
                None,
                &StressorConfig {
                    seed: self.seed,
                    switchless_workers: None,
                    attempt: 0,
                },
            ),
        }
    }
}

/// Campaign shape and execution policy.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub workloads: Vec<Workload>,
    pub profiles: Vec<HwProfile>,
    pub seeds: Vec<u64>,
    /// Worker OS threads; cells are independent simulations, one per
    /// worker at a time.
    pub jobs: usize,
    /// Engine every cell runs on.
    pub engine: Engine,
    /// Re-run every cell on the legacy engine and assert byte-equality.
    pub verify: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workloads: Workload::ALL.to_vec(),
            profiles: HwProfile::ALL.to_vec(),
            seeds: vec![0, 1],
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            engine: Engine::Fast,
            verify: false,
        }
    }
}

impl CampaignConfig {
    /// The full cell matrix, in deterministic (workload, profile, seed)
    /// order. Cell index in this list is the cell's identity in the
    /// summary.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for &workload in &self.workloads {
            for &profile in &self.profiles {
                for &seed in &self.seeds {
                    cells.push(Cell {
                        workload,
                        profile,
                        seed,
                    });
                }
            }
        }
        cells
    }
}

/// One completed cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    pub index: usize,
    pub cell: Cell,
    pub file_name: String,
    /// Serialised trace size.
    pub bytes: usize,
    /// Fault rows recorded in the trace (0 for seed-0 baselines of
    /// workloads without implicit faults).
    pub fault_rows: usize,
    /// `Some(true)` when the legacy cross-check ran and matched.
    pub verified: Option<bool>,
    /// Wall-clock time of the (fast-engine) run.
    pub wall: Duration,
}

/// A completed campaign.
#[derive(Debug)]
pub struct CampaignRun {
    pub outcomes: Vec<CellOutcome>,
    pub wall: Duration,
    pub jobs: usize,
    pub cores: usize,
    pub engine: Engine,
}

impl CampaignRun {
    /// The merged machine-readable summary, ordered by cell index —
    /// byte-stable regardless of worker count or interleaving.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"engine\": \"{}\",\n", self.engine.label()));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"cells\": {},\n", self.outcomes.len()));
        out.push_str(&format!("  \"wall_ms\": {},\n", self.wall.as_millis()));
        out.push_str("  \"results\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let comma = if i + 1 == self.outcomes.len() {
                ""
            } else {
                ","
            };
            let verified = match o.verified {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"index\": {}, \"workload\": \"{}\", \"profile\": \"{}\", \
                 \"seed\": {}, \"plan\": \"{}\", \"file\": \"{}\", \"bytes\": {}, \
                 \"fault_rows\": {}, \"verified\": {}, \"wall_us\": {}}}{}\n",
                o.index,
                o.cell.workload.label(),
                profile_file_label(o.cell.profile),
                o.cell.seed,
                o.cell.plan_label(),
                o.file_name,
                o.bytes,
                o.fault_rows,
                verified,
                o.wall.as_micros(),
                comma,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the campaign: claims cells off a shared counter from `jobs`
/// worker threads, writes each trace to its deterministic path under
/// `out_dir` (if given) plus a merged `campaign.json` summary.
///
/// # Panics
///
/// Panics if a cell fails, a verify cross-check diverges, or an output
/// file cannot be written.
pub fn run(cfg: &CampaignConfig, out_dir: Option<&Path>) -> CampaignRun {
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).expect("create campaign output dir");
    }
    let cells = cfg.cells();
    let jobs = cfg.jobs.max(1);
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<CellOutcome>> = Mutex::new(Vec::with_capacity(cells.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(cells.len()).max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(index).copied() else {
                    break;
                };
                let cell_start = Instant::now();
                let bytes = with_engine(cfg.engine, || cell.run());
                let wall = cell_start.elapsed();
                let verified = cfg.verify.then(|| {
                    let oracle = with_engine(Engine::Legacy, || cell.run());
                    assert_eq!(
                        oracle,
                        bytes,
                        "cell {} diverges between engines",
                        cell.file_name()
                    );
                    true
                });
                let file_name = cell.file_name();
                if let Some(dir) = out_dir {
                    std::fs::write(dir.join(&file_name), &bytes).expect("write cell trace");
                }
                outcomes.lock().unwrap().push(CellOutcome {
                    index,
                    cell,
                    fault_rows: chaos::fault_rows(&bytes),
                    bytes: bytes.len(),
                    file_name,
                    verified,
                    wall,
                });
            });
        }
    });
    let mut outcomes = outcomes.into_inner().unwrap();
    outcomes.sort_by_key(|o| o.index);
    let run = CampaignRun {
        outcomes,
        wall: start.elapsed(),
        jobs,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        engine: cfg.engine,
    };
    if let Some(dir) = out_dir {
        std::fs::write(dir.join("campaign.json"), run.summary_json()).expect("write summary");
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(jobs: usize, verify: bool) -> CampaignConfig {
        CampaignConfig {
            workloads: vec![Workload::Antipatterns, Workload::Switchless],
            profiles: vec![HwProfile::Unpatched],
            seeds: vec![0, 7],
            jobs,
            engine: Engine::Fast,
            verify,
        }
    }

    #[test]
    fn campaign_outputs_are_deterministic_across_worker_counts() {
        let serial = run(&tiny_cfg(1, false), None);
        let fanned = run(&tiny_cfg(4, false), None);
        assert_eq!(serial.outcomes.len(), 4);
        for (a, b) in serial.outcomes.iter().zip(&fanned.outcomes) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.file_name, b.file_name);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.fault_rows, b.fault_rows);
        }
        // Chaos seeds must actually inject something.
        assert!(serial.outcomes.iter().any(|o| o.fault_rows > 0));
    }

    #[test]
    fn verify_mode_cross_checks_against_legacy() {
        let run = run(&tiny_cfg(2, true), None);
        assert!(run.outcomes.iter().all(|o| o.verified == Some(true)));
    }

    #[test]
    fn summary_json_round_trips_cell_identity() {
        let cfg = tiny_cfg(1, false);
        let summary = run(&cfg, None).summary_json();
        for cell in cfg.cells() {
            assert!(summary.contains(&cell.file_name()), "{summary}");
        }
        assert!(summary.contains("\"engine\": \"fast\""));
    }
}
