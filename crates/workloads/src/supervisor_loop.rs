//! A SecureKeeper-style stateful server surviving enclave losses under the
//! [`Supervisor`]: the closed-loop demo for the enclave-lost recovery
//! subsystem.
//!
//! The enclave holds a session key established by `ecall_init_session` —
//! state that dies with the EPC when the enclave is lost. Every request
//! mixes that key into its reply, so a recovery that fails to re-establish
//! the session is visible in the *application-level checksum*, not just in
//! the trace. The supervisor's warm-up hook replays the session init after
//! every rebuild; [`recovery_demo`] runs the workload fault-free and under
//! an [`EnclaveLost`](sim_core::fault::FaultKind::EnclaveLost) plan and the
//! two checksums must agree.
//!
//! The request handler is idempotent (its only effect is the reply value),
//! so the default [`ReplayThenRetry`](sgx_sdk::IdempotencyPolicy) policy is
//! the right one: rebuild, replay the session init, re-issue the
//! interrupted request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sgx_perf::{Logger, LoggerConfig, TraceDb};
use sgx_sdk::{
    CallData, OcallTableBuilder, SdkError, SdkResult, Supervisor, SupervisorConfig,
    SwitchlessConfig, ThreadCtx,
};
use sgx_sim::EnclaveConfig;
use sim_core::fault::{FaultKind, FaultPlan, FaultTrigger};
use sim_core::sync::Mutex;
use sim_core::{HwProfile, Nanos};
use sim_threads::Simulation;

use crate::harness::{Harness, RunStats, Variant};

/// The server's enclave interface: a session-establishment ecall (the
/// state the supervisor must replay after a loss) and the request handler.
pub const EDL: &str = "enclave {
    trusted {
        public void ecall_init_session(uint64_t key);
        public uint64_t ecall_put(uint64_t req);
    };
};";

/// The session key the client establishes — and the warm-up hook replays.
pub const SESSION_KEY: u64 = 0x5EC5_EED5;

/// Called after each completed request with the request index — the
/// crash-consistent persistence point for the segmented-trace example.
pub type RequestObserver = Arc<dyn Fn(u64) + Send + Sync>;

/// Outcome of one supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedRun {
    /// Throughput bookkeeping for the run.
    pub stats: RunStats,
    /// Sum of all replies — session-keyed, so it proves state replay.
    pub checksum: u64,
    /// Enclave rebuilds the supervisor performed during the run.
    pub restarts: u32,
}

/// A fault plan that loses the enclave on the entry serving request
/// `at_request` (0-based). Entry counting starts at arming: entry 1 is the
/// session init, entry `r + 2` is request `r` — call-triggered, so the
/// loss lands on the same request on every hardware profile.
pub fn loss_plan(at_request: u64) -> FaultPlan {
    FaultPlan::seeded(0xC0FFEE).with(FaultTrigger::AtCall(at_request + 2), FaultKind::EnclaveLost)
}

/// Runs `requests` through the supervised server. With `plan`, the fault
/// plan is armed just before the simulation starts; with `switchless`, the
/// subsystem serves forced calls until a loss shuts the rings down (the
/// supervisor cannot respawn workers, so recovered calls go synchronous).
///
/// # Errors
///
/// SDK failures, including [`SdkError::RecoveryExhausted`] once the
/// supervisor's circuit breaker trips.
pub fn run(
    harness: &Harness,
    requests: u64,
    plan: Option<&FaultPlan>,
    switchless: Option<SwitchlessConfig>,
) -> SdkResult<SupervisedRun> {
    run_with_observer(harness, requests, plan, switchless, None)
}

/// [`run`] with a per-request observer — the hook the segmented-trace
/// example uses to persist a trace snapshot after every unit of work.
///
/// # Errors
///
/// See [`run`].
pub fn run_with_observer(
    harness: &Harness,
    requests: u64,
    plan: Option<&FaultPlan>,
    switchless: Option<SwitchlessConfig>,
    observer: Option<RequestObserver>,
) -> SdkResult<SupervisedRun> {
    let sup = Supervisor::launch(harness.runtime(), SupervisorConfig::default(), |rt| {
        let spec = sgx_edl::parse(EDL).map_err(|e| SdkError::Interface(e.to_string()))?;
        let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
        // The session key lives inside the recipe: a rebuild produces a
        // fresh enclave with the session *unestablished*, exactly like EPC
        // contents vanishing on real hardware.
        let session = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&session);
        enclave.register_ecall("ecall_init_session", move |ctx, data| {
            // SecureKeeper-style session establishment: deriving the
            // session key costs more than building the enclave did, and it
            // is what every rebuild must redo — the replay-dominated MTTR
            // the analyzer's ReduceRecoveryState detector looks for.
            ctx.compute(Nanos::from_micros(400))?;
            s.store(data.scalar, Ordering::SeqCst);
            Ok(())
        })?;
        let s = Arc::clone(&session);
        enclave.register_ecall("ecall_put", move |ctx, data| {
            ctx.compute(Nanos::from_micros(3))?;
            let key = s.load(Ordering::SeqCst);
            data.ret = data.scalar.wrapping_mul(0x9E37_79B9).wrapping_add(key);
            Ok(())
        })?;
        Ok(enclave)
    })?;
    sup.register_warmup("init-session", |tcx, rt, eid, table| {
        let mut data = CallData::new(SESSION_KEY);
        rt.ecall(tcx, eid, "ecall_init_session", table, &mut data)
    });
    let table = Arc::new(OcallTableBuilder::new(sup.enclave().spec()).build()?);

    let sim = Simulation::new(harness.clock().clone());
    if let Some(cfg) = switchless {
        let sw = sup.enable_switchless(cfg)?;
        sw.spawn_workers(&sim);
    }
    harness.machine().set_fault_plan(plan);

    let checksum = Arc::new(AtomicU64::new(0));
    let failure: Arc<Mutex<Option<SdkError>>> = Arc::new(Mutex::new(None));
    let start = harness.clock().now();
    {
        let sup = Arc::clone(&sup);
        let checksum = Arc::clone(&checksum);
        let failure = Arc::clone(&failure);
        sim.spawn("client", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            let mut data = CallData::new(SESSION_KEY);
            match sup.ecall(&tcx, "ecall_init_session", &table, &mut data) {
                Ok(()) => {
                    for req in 0..requests {
                        let mut data = CallData::new(req);
                        match sup.ecall(&tcx, "ecall_put", &table, &mut data) {
                            Ok(()) => {
                                checksum.fetch_add(data.ret, Ordering::SeqCst);
                                if let Some(obs) = &observer {
                                    obs(req);
                                }
                            }
                            Err(e) => {
                                *failure.lock() = Some(e);
                                break;
                            }
                        }
                    }
                }
                Err(e) => *failure.lock() = Some(e),
            }
            // Loss-free switchless runs still own their rings; after a
            // loss the supervisor has already drained them.
            if let Some(sw) = sup.take_switchless() {
                sw.shutdown(ctx);
            }
        });
    }
    sim.run();
    if let Some(e) = failure.lock().take() {
        return Err(e);
    }
    Ok(SupervisedRun {
        stats: RunStats {
            variant: Variant::Enclave,
            operations: requests,
            elapsed: harness.clock().now() - start,
        },
        checksum: checksum.load(Ordering::SeqCst),
        restarts: sup.restarts(),
    })
}

/// The closed-loop recovery demonstration: the same workload fault-free
/// and under a mid-run enclave loss, both traced.
#[derive(Debug, Clone)]
pub struct RecoveryDemo {
    /// The fault-free run.
    pub clean: SupervisedRun,
    /// The run that lost its enclave mid-way and recovered.
    pub faulted: SupervisedRun,
    /// Trace of the fault-free run (no lifecycle table).
    pub trace_clean: TraceDb,
    /// Trace of the recovered run (lifecycle ledger populated).
    pub trace_faulted: TraceDb,
}

/// Runs the demo: `requests` requests fault-free, then the same workload
/// losing its enclave halfway through ([`loss_plan`]). The recovered run
/// must finish with the same application-level checksum.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn recovery_demo(profile: HwProfile, requests: u64) -> SdkResult<RecoveryDemo> {
    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let clean = run(&harness, requests, None, None)?;
    let trace_clean = logger.finish();

    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let plan = loss_plan(requests / 2);
    let faulted = run(&harness, requests, Some(&plan), None)?;
    let trace_faulted = logger.finish();

    Ok(RecoveryDemo {
        clean,
        faulted,
        trace_clean,
        trace_faulted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_preserves_the_checksum() {
        let demo = recovery_demo(HwProfile::Unpatched, 24).unwrap();
        assert_eq!(demo.clean.restarts, 0);
        assert_eq!(demo.faulted.restarts, 1, "exactly one mid-run loss");
        assert_eq!(
            demo.faulted.checksum, demo.clean.checksum,
            "replayed session must reproduce every reply"
        );
        // The loss costs virtual time (backoff + rebuild + replay).
        assert!(demo.faulted.stats.elapsed > demo.clean.stats.elapsed);
        // The ledger: clean trace has no lifecycle table, the recovered
        // one records the full lost → rebuild → replay → retry →
        // recovered arc.
        assert!(demo.trace_clean.lifecycle.is_empty());
        let stages: Vec<u8> = demo
            .trace_faulted
            .lifecycle
            .iter()
            .map(|r| r.stage)
            .collect();
        assert_eq!(stages, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn observer_sees_every_request() {
        let harness = Harness::new(HwProfile::Unpatched);
        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        let run = run_with_observer(
            &harness,
            16,
            Some(&loss_plan(8)),
            None,
            Some(Arc::new(move |_| {
                s.fetch_add(1, Ordering::SeqCst);
            })),
        )
        .unwrap();
        assert_eq!(run.restarts, 1);
        assert_eq!(
            seen.load(Ordering::SeqCst),
            16,
            "retried request counted once"
        );
    }
}
