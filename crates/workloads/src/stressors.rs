//! Dedicated stressor workloads for campaign matrices, one per resource
//! axis (the Stress-SGX decomposition): EPC paging pressure, enclave
//! transition rate, ocall-bound IO, and in-enclave compute.
//!
//! Unlike the §5 application reproductions these are *pure* stressors —
//! each saturates exactly one cost-model path so a campaign cell's diff
//! verdict attributes cleanly to the axis under test. All four run their
//! driver on the deterministic scheduler and accept an optional
//! switchless worker count, so the campaign's switchless axis applies
//! uniformly: transition-bound stressors route their hot calls through
//! the rings, the others keep their calls synchronous but still carry
//! the workers (a deliberate idle-worker configuration).
//!
//! Determinism contract: a stressor trace is a pure function of
//! (stressor, profile, fault plan, [`StressorConfig`]). The seed perturbs
//! only what the stressor declares it perturbs (the EPC-thrash visit
//! order); operation counts are seed-invariant so seed replicas never
//! regress against their baseline cell.

use std::sync::Arc;

use sgx_perf::{Logger, LoggerConfig};
use sgx_sdk::{CallData, OcallTableBuilder, SdkResult, SwitchlessConfig, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, MachineParams};
use sim_core::fault::FaultPlan;
use sim_core::{HwProfile, Nanos};
use sim_threads::Simulation;

use crate::harness::{Harness, RunStats, Variant};

/// The four stressor axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stressor {
    /// Working-set sweeps past the EPC: continuous EWB/ELDU traffic.
    EpcThrash,
    /// Tight sub-transition-time ecalls: transition-rate saturation.
    EcallStorm,
    /// write+fsync ocall pairs from inside an ecall: ocall/IO-bound.
    IoFsyncLoop,
    /// Long in-enclave compute bursts past the timer quantum: AEX-bound.
    CpuCompute,
}

impl Stressor {
    /// All stressors, in axis order.
    pub const ALL: [Stressor; 4] = [
        Stressor::EpcThrash,
        Stressor::EcallStorm,
        Stressor::IoFsyncLoop,
        Stressor::CpuCompute,
    ];

    /// Filename-safe label, also the campaign-spec workload name.
    pub fn label(self) -> &'static str {
        match self {
            Stressor::EpcThrash => "epc_thrash",
            Stressor::EcallStorm => "ecall_storm",
            Stressor::IoFsyncLoop => "io_fsync_loop",
            Stressor::CpuCompute => "cpu_compute",
        }
    }
}

/// Per-cell stressor knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StressorConfig {
    /// Perturbs the EPC-thrash page visit order; no-op for the other
    /// stressors (their operation counts must stay seed-invariant).
    pub seed: u64,
    /// `Some(n)` routes the stressor's hot calls through the switchless
    /// rings with `n` workers on the serving side.
    pub switchless_workers: Option<usize>,
    /// 0-based supervision attempt (0 on the first run, 1 on the first
    /// retry, ...). Real stressors must ignore it — trace bytes are
    /// attempt-invariant — but the `flaky` fault fixture keys off it.
    pub attempt: u32,
}

/// Heap pages the EPC-thrash enclave touches per sweep.
const THRASH_HEAP_PAGES: usize = 128;

/// Machine parameters for [`epc_thrash`]: an EPC half the thrash working
/// set, so every sweep evicts.
pub fn epc_thrash_params() -> MachineParams {
    MachineParams {
        epc_pages: THRASH_HEAP_PAGES / 2,
        ..MachineParams::default()
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The seeded page visit order of one [`epc_thrash`] run: a Fisher–Yates
/// shuffle of the heap pages. Public so tests can predict eviction
/// patterns.
pub fn thrash_order(seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..THRASH_HEAP_PAGES).collect();
    let mut state = seed ^ 0xE9C0_7412;
    for i in (1..order.len()).rev() {
        let j = (xorshift(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Shared driver: runs `body` on a scheduler thread, with the switchless
/// subsystem (if configured) brought up before and shut down after.
fn drive(
    harness: &Harness,
    eid: sgx_sim::EnclaveId,
    switchless: Option<SwitchlessConfig>,
    ops: u64,
    body: impl FnOnce(&ThreadCtx) + Send + 'static,
) -> SdkResult<RunStats> {
    let sim = Simulation::new(harness.clock().clone());
    let sw = match switchless {
        Some(cfg) => {
            let sw = harness.runtime().enable_switchless(eid, cfg)?;
            sw.spawn_workers(&sim);
            Some(sw)
        }
        None => None,
    };
    let start = harness.clock().now();
    sim.spawn("stressor", move |ctx| {
        let tcx = ThreadCtx::from_sim(ctx);
        body(&tcx);
        if let Some(sw) = &sw {
            sw.shutdown(ctx);
        }
    });
    sim.run();
    Ok(RunStats {
        variant: Variant::Enclave,
        operations: ops,
        elapsed: harness.clock().now() - start,
    })
}

/// EPC thrash: an enclave whose heap is twice the EPC, swept page by page
/// in a seeded order. Every sweep forces ~half the working set through
/// EWB/ELDU, charging the paging costs continuously. Build the harness
/// with [`epc_thrash_params`].
///
/// # Errors
///
/// Propagates SDK failures.
pub fn epc_thrash(harness: &Harness, sweeps: u64, cfg: &StressorConfig) -> SdkResult<RunStats> {
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_sweep(uint64_t pass); }; };")
        .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(
        &spec,
        &EnclaveConfig {
            heap_kib: THRASH_HEAP_PAGES * 4, // 4 KiB pages
            ..EnclaveConfig::default()
        },
    )?;
    let heap = harness.machine().heap_range(enclave.id())?;
    let order = thrash_order(cfg.seed);
    enclave.register_ecall("ecall_sweep", move |ctx, _| {
        for &page in &order {
            let p = heap.start + page; // heap_range is in pages
            ctx.touch(p..p + 1, AccessKind::Write)?;
        }
        ctx.compute(Nanos::from_micros(20))?;
        Ok(())
    })?;
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
    let switchless = cfg.switchless_workers.map(|n| SwitchlessConfig {
        trusted_workers: n,
        force_ecalls: vec!["ecall_sweep".to_string()],
        ..SwitchlessConfig::default()
    });
    let rt = Arc::clone(rt);
    let eid = enclave.id();
    drive(harness, eid, switchless, sweeps, move |tcx| {
        for pass in 0..sweeps {
            rt.ecall(tcx, eid, "ecall_sweep", &table, &mut CallData::new(pass))
                .expect("epc_thrash sweep");
        }
    })
}

/// Ecall storm: a tight loop of sub-transition-time ecalls — nothing but
/// transition overhead, the purest SISC shape. With switchless workers
/// the storm routes through the trusted ring instead.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn ecall_storm(harness: &Harness, calls: u64, cfg: &StressorConfig) -> SdkResult<RunStats> {
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_spin(uint64_t i); }; };")
        .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_spin", |ctx, _| {
        ctx.compute(Nanos::from_nanos(200))?;
        Ok(())
    })?;
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
    let switchless = cfg.switchless_workers.map(|n| SwitchlessConfig {
        trusted_workers: n,
        force_ecalls: vec!["ecall_spin".to_string()],
        ..SwitchlessConfig::default()
    });
    let rt = Arc::clone(rt);
    let eid = enclave.id();
    drive(harness, eid, switchless, calls, move |tcx| {
        for i in 0..calls {
            rt.ecall(tcx, eid, "ecall_spin", &table, &mut CallData::new(i))
                .expect("ecall_storm call");
        }
    })
}

/// IO/fsync loop: each request is one ecall issuing a write+fsync ocall
/// pair — the naïve enclavised storage shape (§5.2.2), ocall-bound. With
/// switchless workers the hot ocalls are served from the untrusted ring.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn io_fsync_loop(harness: &Harness, writes: u64, cfg: &StressorConfig) -> SdkResult<RunStats> {
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_append(uint64_t rec); };
                   untrusted { void ocall_write(uint64_t len); void ocall_fsync(uint64_t f); }; };",
    )
    .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_append", |ctx, data| {
        ctx.compute(Nanos::from_nanos(800))?; // serialize the record
        ctx.ocall("ocall_write", &mut CallData::new(data.scalar))?;
        ctx.ocall("ocall_fsync", &mut CallData::new(0))?;
        Ok(())
    })?;
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_write", |host, _| {
        host.compute(Nanos::from_micros(1));
        Ok(())
    })?;
    builder.register("ocall_fsync", |host, _| {
        host.compute(Nanos::from_micros(8)); // the flush dominates
        Ok(())
    })?;
    let table = Arc::new(builder.build()?);
    let switchless = cfg.switchless_workers.map(|n| SwitchlessConfig {
        untrusted_workers: n,
        force_ocalls: vec!["ocall_write".to_string(), "ocall_fsync".to_string()],
        ..SwitchlessConfig::default()
    });
    let rt = Arc::clone(rt);
    let eid = enclave.id();
    drive(harness, eid, switchless, writes, move |tcx| {
        for rec in 0..writes {
            rt.ecall(tcx, eid, "ecall_append", &table, &mut CallData::new(rec))
                .expect("io_fsync_loop append");
        }
    })
}

/// CPU compute: few long in-enclave bursts, each several timer quanta
/// long — transition-free but AEX-bound (the paper's 45 ms ecall shape at
/// small scale).
///
/// # Errors
///
/// Propagates SDK failures.
pub fn cpu_compute(harness: &Harness, bursts: u64, cfg: &StressorConfig) -> SdkResult<RunStats> {
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_crunch(uint64_t n); }; };")
        .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_crunch", |ctx, _| {
        // ~2 timer quanta (quantum ≈ 3.94 ms): every burst takes AEXs.
        ctx.compute(Nanos::from_micros(8_000))?;
        Ok(())
    })?;
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
    let switchless = cfg.switchless_workers.map(|n| SwitchlessConfig {
        trusted_workers: n,
        force_ecalls: vec!["ecall_crunch".to_string()],
        ..SwitchlessConfig::default()
    });
    let rt = Arc::clone(rt);
    let eid = enclave.id();
    drive(harness, eid, switchless, bursts, move |tcx| {
        for n in 0..bursts {
            rt.ecall(tcx, eid, "ecall_crunch", &table, &mut CallData::new(n))
                .expect("cpu_compute burst");
        }
    })
}

/// Campaign-scale operation counts: small enough for the debug-build
/// engine-diff matrix, large enough that each stressor's signature
/// dominates its trace.
pub fn default_ops(stressor: Stressor) -> u64 {
    match stressor {
        Stressor::EpcThrash => 3,
        Stressor::EcallStorm => 400,
        Stressor::IoFsyncLoop => 96,
        Stressor::CpuCompute => 3,
    }
}

/// Runs `stressor` under the logger with `plan` installed and returns the
/// serialised trace — the campaign cell body. Builds the right harness
/// ([`epc_thrash_params`] for the thrash axis, defaults otherwise).
///
/// # Panics
///
/// Panics on SDK failure (stressor cells are all recoverable
/// configurations, so a failure is a bug).
pub fn trace(
    stressor: Stressor,
    profile: HwProfile,
    plan: Option<&FaultPlan>,
    cfg: &StressorConfig,
) -> Vec<u8> {
    let harness = match stressor {
        Stressor::EpcThrash => Harness::with_machine_params(profile, epc_thrash_params()),
        _ => Harness::new(profile),
    };
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    harness.machine().set_fault_plan(plan);
    let ops = default_ops(stressor);
    match stressor {
        Stressor::EpcThrash => epc_thrash(&harness, ops, cfg),
        Stressor::EcallStorm => ecall_storm(&harness, ops, cfg),
        Stressor::IoFsyncLoop => io_fsync_loop(&harness, ops, cfg),
        Stressor::CpuCompute => cpu_compute(&harness, ops, cfg),
    }
    .unwrap_or_else(|e| panic!("{} stressor cell: {e:?}", stressor.label()));
    logger.finish().to_bytes()
}

/// Test-only fault fixtures exercising the campaign supervision layer:
/// each fails in exactly one way, deterministically, so isolation,
/// watchdog, retry and quarantine paths are testable on both engines.
/// Deliberately *not* part of [`crate::campaign::Workload::ALL`] — they
/// resolve by name in specs but never enter default campaign configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFixture {
    /// Panics immediately, before any simulation starts.
    Panicking,
    /// Spins at scheduling points forever; only a supervisor event
    /// budget or wall-clock deadline ends the cell.
    Hanging,
    /// Panics on attempt 0, then behaves as [`Stressor::EcallStorm`] on
    /// every retry — the quarantine ledger's `flaky` classification.
    Flaky,
}

/// Panic message of the [`FaultFixture::Panicking`] fixture.
pub const PANICKING_FIXTURE_MSG: &str = "injected fixture panic";

/// Panic message of the [`FaultFixture::Flaky`] fixture's first attempt.
pub const FLAKY_FIXTURE_MSG: &str = "injected flaky failure (first attempt)";

impl FaultFixture {
    /// All fixtures, in declaration order.
    pub const ALL: [FaultFixture; 3] = [
        FaultFixture::Panicking,
        FaultFixture::Hanging,
        FaultFixture::Flaky,
    ];

    /// The campaign-spec workload name.
    pub fn label(self) -> &'static str {
        match self {
            FaultFixture::Panicking => "panicking",
            FaultFixture::Hanging => "hanging",
            FaultFixture::Flaky => "flaky",
        }
    }

    /// Resolves a fixture by its spec name.
    pub fn parse(name: &str) -> Option<FaultFixture> {
        FaultFixture::ALL.into_iter().find(|f| f.label() == name)
    }
}

/// Runs a fault fixture as a campaign cell body. [`FaultFixture::Flaky`]
/// retries produce bytes identical to an [`Stressor::EcallStorm`] cell
/// with the same config (attempt-invariant, so resumed and uninterrupted
/// summaries agree).
///
/// # Panics
///
/// By design: `Panicking` always, `Flaky` on attempt 0, `Hanging` when —
/// and only when — a supervisor budget or cancellation trips it.
pub fn fixture_trace(
    fixture: FaultFixture,
    profile: HwProfile,
    plan: Option<&FaultPlan>,
    cfg: &StressorConfig,
) -> Vec<u8> {
    match fixture {
        FaultFixture::Panicking => panic!("{PANICKING_FIXTURE_MSG}"),
        FaultFixture::Hanging => {
            let sim = Simulation::new(sim_core::Clock::new());
            sim.spawn("hang", |ctx| loop {
                ctx.yield_now();
            });
            sim.run();
            unreachable!("hanging fixture ended without supervision")
        }
        FaultFixture::Flaky => {
            if cfg.attempt == 0 {
                panic!("{FLAKY_FIXTURE_MSG}");
            }
            trace(Stressor::EcallStorm, profile, plan, cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_perf::TraceDb;

    fn db(bytes: &[u8]) -> TraceDb {
        TraceDb::from_bytes(bytes).expect("trace bytes")
    }

    #[test]
    fn epc_thrash_pages_continuously() {
        let h = Harness::with_machine_params(HwProfile::Unpatched, epc_thrash_params());
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        epc_thrash(&h, 3, &StressorConfig::default()).unwrap();
        let paging = logger.finish().paging.len();
        // Half the working set misses on every sweep after the first.
        assert!(paging >= THRASH_HEAP_PAGES, "{paging} paging row(s)");
    }

    #[test]
    fn thrash_order_is_a_seeded_permutation() {
        let a = thrash_order(1);
        let b = thrash_order(2);
        assert_ne!(a, b);
        assert_eq!(thrash_order(1), a);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..THRASH_HEAP_PAGES).collect::<Vec<_>>());
    }

    #[test]
    fn seed_changes_thrash_trace_but_not_op_count() {
        let a = trace(
            Stressor::EpcThrash,
            HwProfile::Unpatched,
            None,
            &StressorConfig {
                seed: 1,
                ..StressorConfig::default()
            },
        );
        let b = trace(
            Stressor::EpcThrash,
            HwProfile::Unpatched,
            None,
            &StressorConfig {
                seed: 2,
                ..StressorConfig::default()
            },
        );
        assert_ne!(a, b, "visit order must differ");
        assert_eq!(db(&a).ecalls.len(), db(&b).ecalls.len());
    }

    #[test]
    fn ecall_storm_is_transition_bound() {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        ecall_storm(&h, 400, &StressorConfig::default()).unwrap();
        let trace = logger.finish();
        assert_eq!(trace.ecalls.len(), 400);
        assert!(trace.ocalls.is_empty());
    }

    #[test]
    fn io_fsync_loop_is_ocall_bound() {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        io_fsync_loop(&h, 50, &StressorConfig::default()).unwrap();
        let trace = logger.finish();
        assert_eq!(trace.ecalls.len(), 50);
        assert_eq!(trace.ocalls.len(), 100, "write + fsync per append");
    }

    #[test]
    fn cpu_compute_takes_aexs() {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(
            h.runtime(),
            LoggerConfig {
                aex: sgx_perf::AexMode::Count,
                ..LoggerConfig::default()
            },
        );
        cpu_compute(&h, 3, &StressorConfig::default()).unwrap();
        let trace = logger.finish();
        let aexs: u64 = trace.ecalls.iter().map(|e| e.aex_count).sum();
        assert!(aexs >= 3, "every burst spans a timer quantum, got {aexs}");
    }

    #[test]
    fn switchless_workers_take_over_the_hot_calls() {
        for (stressor, expect_dispatch) in [
            (Stressor::EcallStorm, true),
            (Stressor::IoFsyncLoop, true),
            (Stressor::EpcThrash, true),
            (Stressor::CpuCompute, true),
        ] {
            let on = StressorConfig {
                switchless_workers: Some(1),
                ..StressorConfig::default()
            };
            let bytes = trace(stressor, HwProfile::Unpatched, None, &on);
            let t = db(&bytes);
            let dispatched = t.switchless.len();
            assert_eq!(
                dispatched > 0,
                expect_dispatch,
                "{}: {dispatched} switchless row(s)",
                stressor.label()
            );
        }
    }

    #[test]
    fn fixtures_fail_the_way_they_advertise() {
        use sim_threads::{with_budget, SimBudget, EVENT_BUDGET_EXHAUSTED};
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let msg = |p: Box<dyn std::any::Any + Send>| {
            p.downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default()
        };
        let cfg = StressorConfig::default();
        let e = catch_unwind(AssertUnwindSafe(|| {
            fixture_trace(FaultFixture::Panicking, HwProfile::Unpatched, None, &cfg)
        }))
        .map_err(msg)
        .unwrap_err();
        assert!(e.contains(PANICKING_FIXTURE_MSG), "{e}");

        // The hanging fixture is only survivable under a budget.
        let e = catch_unwind(AssertUnwindSafe(|| {
            with_budget(SimBudget::with_events(50), || {
                fixture_trace(FaultFixture::Hanging, HwProfile::Unpatched, None, &cfg)
            })
        }))
        .map_err(msg)
        .unwrap_err();
        assert!(e.contains(EVENT_BUDGET_EXHAUSTED), "{e}");

        // Flaky: fails on attempt 0, then matches a storm cell exactly.
        let e = catch_unwind(AssertUnwindSafe(|| {
            fixture_trace(FaultFixture::Flaky, HwProfile::Unpatched, None, &cfg)
        }))
        .map_err(msg)
        .unwrap_err();
        assert!(e.contains(FLAKY_FIXTURE_MSG), "{e}");
        let retry = StressorConfig {
            attempt: 1,
            ..StressorConfig::default()
        };
        let bytes = fixture_trace(FaultFixture::Flaky, HwProfile::Unpatched, None, &retry);
        assert_eq!(
            bytes,
            trace(Stressor::EcallStorm, HwProfile::Unpatched, None, &retry),
            "flaky retries must be byte-identical to an ecall_storm cell"
        );
    }

    #[test]
    fn fixture_names_resolve_but_stay_out_of_the_stressor_axis() {
        for f in FaultFixture::ALL {
            assert_eq!(FaultFixture::parse(f.label()), Some(f));
            assert!(Stressor::ALL.iter().all(|s| s.label() != f.label()));
        }
        assert_eq!(FaultFixture::parse("ecall_storm"), None);
    }

    #[test]
    fn traces_are_deterministic_per_cell() {
        for stressor in Stressor::ALL {
            for cfg in [
                StressorConfig::default(),
                StressorConfig {
                    seed: 9,
                    switchless_workers: Some(2),
                    ..StressorConfig::default()
                },
            ] {
                let a = trace(stressor, HwProfile::Spectre, None, &cfg);
                let b = trace(stressor, HwProfile::Spectre, None, &cfg);
                assert_eq!(a, b, "{} must replay", stressor.label());
            }
        }
    }
}
