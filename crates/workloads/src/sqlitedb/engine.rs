//! A small SQLite-like storage engine: page-structured table file with a
//! rollback journal, autocommit transactions and a B-tree index.
//!
//! Real data structures, virtual I/O: the row index is an actual
//! `BTreeMap`, page assignments and journal offsets are computed for real,
//! and every file operation goes through the [`Vfs`] so
//! the I/O pattern — the thing sgx-perf traces — is authentic:
//!
//! one autocommit `INSERT` performs
//! 1. journal header write        (`lseek` + `write`)
//! 2. original-page backup write  (`lseek` + `write`)
//! 3. journal commit marker       (`lseek` + `write`)
//! 4. table page write            (`lseek` + `write`)
//! 5. database header update      (`lseek` + `write`)
//! 6. `fsync`
//!
//! i.e. five lseek+write pairs and one fsync — each pair a merge
//! opportunity for the sgx-perf analyzer.

use std::collections::BTreeMap;

use sgx_sdk::SdkResult;
use sim_core::Nanos;

use super::vfs::Vfs;

/// Size of one database page in bytes.
pub const DB_PAGE: usize = 4096;

const JOURNAL_HEADER: usize = 512;
const COMMIT_MARKER: usize = 8;
const DB_HEADER: usize = 100;

/// CPU cost model of the engine itself (runs inside the enclave in the
/// enclavised variants).
#[derive(Debug, Clone)]
pub struct EngineParams {
    /// Statement parse/plan cost.
    pub parse_base: Nanos,
    /// Additional parse cost per row byte.
    pub parse_per_byte_tenth_ns: u64,
    /// B-tree descend/insert base cost.
    pub btree_base: Nanos,
    /// Additional B-tree cost per level.
    pub btree_per_level: Nanos,
    /// Page (de)serialisation cost.
    pub page_codec: Nanos,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            parse_base: Nanos::from_nanos(8_500),
            parse_per_byte_tenth_ns: 20, // 2 ns per byte
            btree_base: Nanos::from_nanos(3_000),
            btree_per_level: Nanos::from_nanos(350),
            page_codec: Nanos::from_nanos(2_500),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowMeta {
    page: u64,
    len: usize,
}

/// The storage engine. In the enclavised variants this state lives inside
/// the enclave.
#[derive(Debug)]
pub struct Engine {
    params: EngineParams,
    index: BTreeMap<u64, RowMeta>,
    /// Bytes used in the currently-filling table page.
    page_fill: usize,
    /// Number of allocated table pages.
    pages: u64,
    /// Monotonic journal generation.
    journal_gen: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineParams::default())
    }
}

impl Engine {
    /// Creates an empty database.
    pub fn new(params: EngineParams) -> Engine {
        Engine {
            params,
            index: BTreeMap::new(),
            page_fill: 0,
            pages: 1,
            journal_gen: 0,
        }
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.index.len()
    }

    /// Number of allocated table pages.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Depth of the (simulated) B-tree for the current row count.
    fn btree_depth(&self) -> u64 {
        // Fanout ~256: depth grows with log256(rows).
        (64 - (self.index.len() as u64 | 1).leading_zeros() as u64) / 8 + 1
    }

    /// Inserts one row in its own autocommit transaction, performing the
    /// full journal + page write + fsync protocol through `vfs`.
    ///
    /// Returns `false` (without I/O) if the key already exists.
    ///
    /// # Errors
    ///
    /// Propagates VFS failures (ocall errors in the enclavised variants).
    pub fn insert(&mut self, key: u64, row_len: usize, vfs: &mut dyn Vfs) -> SdkResult<bool> {
        // Parse + plan.
        vfs.compute(
            self.params.parse_base
                + Nanos::from_nanos(row_len as u64 * self.params.parse_per_byte_tenth_ns / 10),
        )?;
        // B-tree descend.
        vfs.compute(self.params.btree_base + self.params.btree_per_level * self.btree_depth())?;
        if self.index.contains_key(&key) {
            return Ok(false);
        }

        // Allocate space in the current table page.
        if self.page_fill + row_len > DB_PAGE {
            self.pages += 1;
            self.page_fill = 0;
        }
        let page = self.pages - 1;
        self.page_fill += row_len;
        self.index.insert(key, RowMeta { page, len: row_len });

        // --- autocommit transaction ---
        self.journal_gen += 1;
        let journal_base = 1 << 40; // journal file "offset space"
                                    // 1. journal header
        vfs.lseek_write(journal_base, JOURNAL_HEADER)?;
        // 2. original page backup
        vfs.compute(self.params.page_codec)?;
        vfs.lseek_write(journal_base + JOURNAL_HEADER as u64, DB_PAGE)?;
        // 3. commit marker
        vfs.lseek_write(
            journal_base + (JOURNAL_HEADER + DB_PAGE) as u64,
            COMMIT_MARKER,
        )?;
        // 4. table page
        vfs.compute(self.params.page_codec)?;
        vfs.lseek_write(page * DB_PAGE as u64 + DB_HEADER as u64, DB_PAGE)?;
        // 5. database header (change counter)
        vfs.lseek_write(0, DB_HEADER)?;
        // 6. flush
        vfs.fsync()?;
        Ok(true)
    }

    /// Point lookup; charges B-tree descend cost only (pages are cached).
    ///
    /// # Errors
    ///
    /// Propagates VFS failures.
    pub fn lookup(&self, key: u64, vfs: &mut dyn Vfs) -> SdkResult<Option<usize>> {
        vfs.compute(self.params.btree_base + self.params.btree_per_level * self.btree_depth())?;
        Ok(self.index.get(&key).map(|m| m.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqlitedb::vfs::{IoParams, NativeVfs};
    use sim_core::Clock;

    fn native_vfs(clock: &Clock) -> NativeVfs {
        NativeVfs::new(clock.clone(), 42, IoParams::default())
    }

    #[test]
    fn insert_and_lookup_roundtrip() {
        let clock = Clock::new();
        let mut vfs = native_vfs(&clock);
        let mut engine = Engine::default();
        assert!(engine.insert(7, 100, &mut vfs).unwrap());
        assert_eq!(engine.lookup(7, &mut vfs).unwrap(), Some(100));
        assert_eq!(engine.lookup(8, &mut vfs).unwrap(), None);
        assert_eq!(engine.row_count(), 1);
    }

    #[test]
    fn duplicate_insert_is_rejected_without_io() {
        let clock = Clock::new();
        let mut vfs = native_vfs(&clock);
        let mut engine = Engine::default();
        engine.insert(1, 50, &mut vfs).unwrap();
        let before = clock.now();
        assert!(!engine.insert(1, 50, &mut vfs).unwrap());
        let dup_cost = clock.now() - before;
        // Only parse + descend, no journal protocol (~12 us vs ~43 us).
        assert!(dup_cost < Nanos::from_micros(16), "{dup_cost}");
    }

    #[test]
    fn pages_fill_and_roll_over() {
        let clock = Clock::new();
        let mut vfs = native_vfs(&clock);
        let mut engine = Engine::default();
        // 500-byte rows: 8 per page.
        for key in 0..17 {
            engine.insert(key, 500, &mut vfs).unwrap();
        }
        assert_eq!(engine.page_count(), 3);
    }

    #[test]
    fn insert_cost_is_in_expected_range() {
        // Native per-insert cost calibration target: ~30-40 us so the
        // native throughput lands near the paper's 23k req/s scale.
        let clock = Clock::new();
        let mut vfs = native_vfs(&clock);
        let mut engine = Engine::default();
        let n = 1000u64;
        let before = clock.now();
        for key in 0..n {
            engine.insert(key, 200, &mut vfs).unwrap();
        }
        let per_insert = (clock.now() - before) / n;
        assert!(
            (Nanos::from_micros(25)..Nanos::from_micros(55)).contains(&per_insert),
            "per-insert {per_insert}"
        );
    }

    #[test]
    fn btree_depth_grows_slowly() {
        let mut engine = Engine::default();
        assert_eq!(engine.btree_depth(), 1);
        let clock = Clock::new();
        let mut vfs = native_vfs(&clock);
        for key in 0..300 {
            engine.insert(key, 10, &mut vfs).unwrap();
        }
        assert_eq!(engine.btree_depth(), 2);
    }
}
