//! The §5.2.2 benchmark driver: replay git-commit-like records as inserts
//! against the engine in the native, enclavised and optimised variants.

use std::sync::Arc;

use sgx_sdk::{CallData, OcallTableBuilder, SdkResult, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig};
use sim_core::sync::Mutex;

use crate::harness::{Harness, RunStats, Variant};

use super::engine::{Engine, EngineParams};
use super::vfs::{HostFile, IoParams, NativeVfs, OcallVfs};

/// The published (naïve) enclave interface: system calls as one-to-one
/// ocalls.
pub const SQLITE_EDL: &str = r#"
enclave {
    trusted {
        public int ecall_insert(uint64_t key, [in, size=len] char* row, size_t len);
        public int ecall_lookup(uint64_t key);
    };
    untrusted {
        void ocall_lseek(uint64_t offset);
        int ocall_write([in, size=len] char* buf, size_t len);
        int ocall_fsync();
    };
};
"#;

/// The optimised interface after applying the sgx-perf merge
/// recommendation: `lseek`+`write` fused into one ocall.
pub const SQLITE_EDL_OPTIMISED: &str = r#"
enclave {
    trusted {
        public int ecall_insert(uint64_t key, [in, size=len] char* row, size_t len);
        public int ecall_lookup(uint64_t key);
    };
    untrusted {
        void ocall_lseek(uint64_t offset);
        int ocall_write([in, size=len] char* buf, size_t len);
        int ocall_lseek_write(uint64_t offset, [in, size=len] char* buf, size_t len);
        int ocall_fsync();
    };
};
"#;

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct SqliteConfig {
    /// Number of insert requests to replay.
    pub inserts: u64,
    /// RNG seed for commit sizes and I/O jitter.
    pub seed: u64,
    /// Which variant to run.
    pub variant: Variant,
    /// I/O cost model.
    pub io: IoParams,
    /// Engine CPU cost model.
    pub engine: EngineParams,
}

impl Default for SqliteConfig {
    fn default() -> Self {
        SqliteConfig {
            inserts: 10_000,
            seed: 0x5eed_0051,
            variant: Variant::Enclave,
            io: IoParams::default(),
            engine: EngineParams::default(),
        }
    }
}

/// Generator of git-commit-like records: `(key, row_len)` pairs with
/// commit-message-scale row sizes (the paper replays commits from popular
/// git repositories).
#[derive(Debug)]
pub struct CommitGen {
    rng: sim_core::rng::Rng,
    next_key: u64,
}

impl CommitGen {
    /// Creates a deterministic generator.
    pub fn new(seed: u64) -> CommitGen {
        CommitGen {
            rng: sim_core::rng::seeded(seed),
            next_key: 0,
        }
    }
}

impl Iterator for CommitGen {
    type Item = (u64, usize);
    fn next(&mut self) -> Option<(u64, usize)> {
        let key = self.next_key;
        self.next_key += 1;
        // Commit records: short subject lines usually, occasional large
        // bodies (merge commits, changelogs).
        let len = if self.rng.gen::<f64>() < 0.1 {
            self.rng.gen_range(600..2_000)
        } else {
            self.rng.gen_range(80..400)
        };
        Some((key, len))
    }
}

/// Runs the insert benchmark in the configured variant and returns the
/// throughput stats. Attach an [`sgx_perf::Logger`] to `harness.runtime()`
/// beforehand to trace the enclavised variants.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn run(harness: &Harness, config: &SqliteConfig) -> SdkResult<RunStats> {
    match config.variant {
        Variant::Native => run_native(harness, config),
        Variant::Enclave | Variant::Optimised => run_enclavised(harness, config),
    }
}

fn run_native(harness: &Harness, config: &SqliteConfig) -> SdkResult<RunStats> {
    let mut vfs = NativeVfs::new(
        harness.clock().clone(),
        config.seed ^ 0xf11e,
        config.io.clone(),
    );
    let mut engine = Engine::new(config.engine.clone());
    let generator = CommitGen::new(config.seed);
    let (count, elapsed) = {
        let before = harness.clock().now();
        let mut count = 0u64;
        for (key, len) in generator.take(config.inserts as usize) {
            if engine.insert(key, len, &mut vfs)? {
                count += 1;
            }
        }
        (count, harness.clock().now() - before)
    };
    Ok(RunStats {
        variant: config.variant,
        operations: count,
        elapsed,
    })
}

fn run_enclavised(harness: &Harness, config: &SqliteConfig) -> SdkResult<RunStats> {
    let optimised = config.variant == Variant::Optimised;
    let edl = if optimised {
        SQLITE_EDL_OPTIMISED
    } else {
        SQLITE_EDL
    };
    let spec = sgx_edl::parse(edl).expect("static EDL parses");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(
        &spec,
        &EnclaveConfig {
            heap_kib: 512,
            ..EnclaveConfig::default()
        },
    )?;

    let engine = Arc::new(Mutex::new(Engine::new(config.engine.clone())));
    let heap = harness.machine().heap_range(enclave.id())?;
    let heap_pages = heap.len();

    let engine_insert = Arc::clone(&engine);
    let heap_start = heap.start;
    enclave.register_ecall("ecall_insert", move |ctx, data| {
        // The row lands in enclave heap: touch the page it belongs to
        // (drives working-set and paging behaviour).
        let page = heap_start + (data.scalar as usize % heap_pages);
        ctx.touch(page..page + 1, AccessKind::Write)?;
        let mut engine = engine_insert.lock();
        let mut vfs = if optimised {
            OcallVfs::merged(ctx)
        } else {
            OcallVfs::naive(ctx)
        };
        let inserted = engine.insert(data.scalar, data.in_bytes, &mut vfs)?;
        data.ret = u64::from(inserted);
        Ok(())
    })?;
    let engine_lookup = Arc::clone(&engine);
    enclave.register_ecall("ecall_lookup", move |ctx, data| {
        let engine = engine_lookup.lock();
        let mut vfs = OcallVfs::naive(ctx);
        data.ret = engine
            .lookup(data.scalar, &mut vfs)?
            .map_or(0, |l| l as u64);
        Ok(())
    })?;

    let host = HostFile::new(config.seed ^ 0xf11e, config.io.clone());
    let mut builder = OcallTableBuilder::new(enclave.spec());
    {
        let host = Arc::clone(&host);
        builder.register("ocall_lseek", move |h, _| {
            h.compute(host.lseek_cost());
            Ok(())
        })?;
    }
    {
        let host = Arc::clone(&host);
        builder.register("ocall_write", move |h, data| {
            h.compute(host.write_cost(data.scalar as usize));
            Ok(())
        })?;
    }
    if optimised {
        let host = Arc::clone(&host);
        builder.register("ocall_lseek_write", move |h, data| {
            let bytes = data.aux.first().copied().unwrap_or(0) as usize;
            h.compute(host.lseek_cost() + host.write_cost(bytes));
            Ok(())
        })?;
    }
    {
        let host = Arc::clone(&host);
        builder.register("ocall_fsync", move |h, _| {
            h.compute(host.fsync_cost());
            Ok(())
        })?;
    }
    let table = Arc::new(builder.build()?);

    let tcx = ThreadCtx::main();
    let generator = CommitGen::new(config.seed);
    let before = harness.clock().now();
    let mut count = 0u64;
    for (key, len) in generator.take(config.inserts as usize) {
        let mut data = CallData::new(key).with_in_bytes(len);
        rt.ecall(&tcx, enclave.id(), "ecall_insert", &table, &mut data)?;
        count += data.ret;
    }
    let elapsed = harness.clock().now() - before;
    Ok(RunStats {
        variant: config.variant,
        operations: count,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::HwProfile;

    fn cfg(variant: Variant, inserts: u64) -> SqliteConfig {
        SqliteConfig {
            inserts,
            variant,
            ..SqliteConfig::default()
        }
    }

    #[test]
    fn edl_files_parse() {
        assert!(sgx_edl::parse(SQLITE_EDL).is_ok());
        assert!(sgx_edl::parse(SQLITE_EDL_OPTIMISED).is_ok());
    }

    #[test]
    fn commit_gen_is_deterministic() {
        let a: Vec<_> = CommitGen::new(9).take(50).collect();
        let b: Vec<_> = CommitGen::new(9).take(50).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&(_, len)| (80..2_000).contains(&len)));
    }

    #[test]
    fn figure6_ordering_native_beats_optimised_beats_enclave() {
        let native = run(
            &Harness::new(HwProfile::Unpatched),
            &cfg(Variant::Native, 2_000),
        )
        .unwrap()
        .throughput();
        let enclave = run(
            &Harness::new(HwProfile::Unpatched),
            &cfg(Variant::Enclave, 2_000),
        )
        .unwrap()
        .throughput();
        let optimised = run(
            &Harness::new(HwProfile::Unpatched),
            &cfg(Variant::Optimised, 2_000),
        )
        .unwrap()
        .throughput();
        assert!(
            native > optimised && optimised > enclave,
            "native {native:.0} optimised {optimised:.0} enclave {enclave:.0}"
        );
        // §5.2.2 shape: enclave ≈ 0.5-0.65x native, merging recovers ≈1.2-1.45x.
        let enclave_ratio = enclave / native;
        let gain = optimised / enclave;
        assert!((0.40..0.70).contains(&enclave_ratio), "{enclave_ratio}");
        assert!((1.15..1.50).contains(&gain), "{gain}");
    }

    #[test]
    fn native_throughput_is_in_paper_scale() {
        let stats = run(
            &Harness::new(HwProfile::Unpatched),
            &cfg(Variant::Native, 5_000),
        )
        .unwrap();
        let tput = stats.throughput();
        // Paper: 23,087 req/s native. Same order of magnitude expected.
        assert!((15_000.0..40_000.0).contains(&tput), "{tput}");
    }
}
