//! The SQLite workload (§5.2.2, Figure 6).
//!
//! Several research works run an SQL database inside an enclave; the paper
//! benchmarks a series of insert operations into a persistently stored
//! database, "implementing system calls naïvely as ocalls", replaying
//! commits from popular git repositories. sgx-perf's analyzer spots an
//! SDSC problem between the short `lseek` ocalls and the `write` ocalls
//! that always follow them; merging the two into one ocall recovered a
//! third of the lost throughput.
//!
//! This module reproduces that setup with a real (small) storage engine:
//! a page cache + rollback journal + B-tree-backed table ([`engine`])
//! running over a VFS ([`vfs`]) whose operations are either direct
//! (native), naïve ocalls (enclave), or merged `lseek+write` ocalls
//! (optimised).

pub mod engine;
pub mod vfs;
pub mod workload;

pub use engine::{Engine, EngineParams};
pub use vfs::{IoParams, Vfs};
pub use workload::{run, CommitGen, SqliteConfig, SQLITE_EDL, SQLITE_EDL_OPTIMISED};
