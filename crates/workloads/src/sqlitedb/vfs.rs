//! The storage engine's VFS layer.
//!
//! The engine performs all file I/O through the [`Vfs`] trait so the same
//! engine code runs natively (operations charge virtual time directly),
//! enclavised (each operation is an ocall) and optimised (`lseek`+`write`
//! fused into one ocall, as sgx-perf recommends for the SDSC problem).

use sgx_sdk::{CallData, EcallCtx, SdkResult};
use sim_core::rng::jitter;
use sim_core::sync::Mutex;
use sim_core::{Clock, Nanos};
use std::sync::Arc;

/// Execution-time model of the underlying "disk" (SATA SSD of the paper's
/// testbed), with 10% jitter applied per operation.
#[derive(Debug, Clone)]
pub struct IoParams {
    /// `lseek(2)` syscall cost.
    pub lseek_exec: Nanos,
    /// Base `write(2)` cost (page-cache write).
    pub write_exec: Nanos,
    /// Additional write cost per 4 KiB page.
    pub write_per_page: Nanos,
    /// `fsync(2)` cost (flush to the device).
    pub fsync_exec: Nanos,
}

impl Default for IoParams {
    fn default() -> Self {
        IoParams {
            lseek_exec: Nanos::from_nanos(800),
            write_exec: Nanos::from_nanos(1_500),
            write_per_page: Nanos::from_nanos(1_000),
            fsync_exec: Nanos::from_nanos(8_000),
        }
    }
}

impl IoParams {
    fn write_cost(&self, rng: &mut sim_core::rng::Rng, bytes: usize) -> Nanos {
        let pages = bytes.div_ceil(4096) as u64;
        jitter(rng, self.write_exec + self.write_per_page * pages, 0.1)
    }
}

/// File operations the engine needs. All methods account virtual time; the
/// enclave implementations additionally cross the boundary.
pub trait Vfs {
    /// CPU work performed by the engine itself (parsing, B-tree updates).
    /// Runs inside the enclave in the enclavised variants.
    fn compute(&mut self, dur: Nanos) -> SdkResult<()>;

    /// Positions the file cursor.
    fn lseek(&mut self, offset: u64) -> SdkResult<()>;

    /// Writes `bytes` at the cursor.
    fn write(&mut self, bytes: usize) -> SdkResult<()>;

    /// Positions then writes. The default implementation issues the two
    /// separate operations; the optimised VFS fuses them.
    fn lseek_write(&mut self, offset: u64, bytes: usize) -> SdkResult<()> {
        self.lseek(offset)?;
        self.write(bytes)
    }

    /// Flushes to stable storage.
    fn fsync(&mut self) -> SdkResult<()>;
}

/// Native execution: every operation is a plain syscall charged to the
/// clock.
#[derive(Debug)]
pub struct NativeVfs {
    clock: Clock,
    rng: sim_core::rng::Rng,
    params: IoParams,
}

impl NativeVfs {
    /// Creates a native VFS over the shared clock.
    pub fn new(clock: Clock, seed: u64, params: IoParams) -> NativeVfs {
        NativeVfs {
            clock,
            rng: sim_core::rng::seeded(seed),
            params,
        }
    }
}

impl Vfs for NativeVfs {
    fn compute(&mut self, dur: Nanos) -> SdkResult<()> {
        self.clock.advance(dur);
        Ok(())
    }

    fn lseek(&mut self, _offset: u64) -> SdkResult<()> {
        let cost = jitter(&mut self.rng, self.params.lseek_exec, 0.1);
        self.clock.advance(cost);
        Ok(())
    }

    fn write(&mut self, bytes: usize) -> SdkResult<()> {
        let cost = self.params.write_cost(&mut self.rng, bytes);
        self.clock.advance(cost);
        Ok(())
    }

    fn fsync(&mut self) -> SdkResult<()> {
        let cost = jitter(&mut self.rng, self.params.fsync_exec, 0.1);
        self.clock.advance(cost);
        Ok(())
    }
}

/// Shared untrusted-side I/O state: the "real" file descriptor the ocall
/// implementations operate on.
#[derive(Debug)]
pub struct HostFile {
    rng: Mutex<sim_core::rng::Rng>,
    params: IoParams,
}

impl HostFile {
    /// Creates the host-side file model.
    pub fn new(seed: u64, params: IoParams) -> Arc<HostFile> {
        Arc::new(HostFile {
            rng: Mutex::new(sim_core::rng::seeded(seed)),
            params,
        })
    }

    /// Cost of an `lseek`.
    pub fn lseek_cost(&self) -> Nanos {
        jitter(&mut self.rng.lock(), self.params.lseek_exec, 0.1)
    }

    /// Cost of a `write` of `bytes`.
    pub fn write_cost(&self, bytes: usize) -> Nanos {
        self.params.write_cost(&mut self.rng.lock(), bytes)
    }

    /// Cost of an `fsync`.
    pub fn fsync_cost(&self) -> Nanos {
        jitter(&mut self.rng.lock(), self.params.fsync_exec, 0.1)
    }
}

/// The naïve enclavised VFS: every operation is its own ocall (the
/// published design the paper criticises).
pub struct OcallVfs<'c, 'a> {
    ctx: &'c mut EcallCtx<'a>,
    merged: bool,
}

impl<'c, 'a> OcallVfs<'c, 'a> {
    /// Naïve variant: separate `ocall_lseek` and `ocall_write`.
    pub fn naive(ctx: &'c mut EcallCtx<'a>) -> Self {
        OcallVfs { ctx, merged: false }
    }

    /// Optimised variant: fused `ocall_lseek_write` (the sgx-perf merge
    /// recommendation).
    pub fn merged(ctx: &'c mut EcallCtx<'a>) -> Self {
        OcallVfs { ctx, merged: true }
    }
}

impl Vfs for OcallVfs<'_, '_> {
    fn compute(&mut self, dur: Nanos) -> SdkResult<()> {
        self.ctx.compute(dur)?;
        Ok(())
    }

    fn lseek(&mut self, offset: u64) -> SdkResult<()> {
        self.ctx.ocall("ocall_lseek", &mut CallData::new(offset))
    }

    fn write(&mut self, bytes: usize) -> SdkResult<()> {
        self.ctx.ocall(
            "ocall_write",
            &mut CallData::new(bytes as u64).with_in_bytes(bytes),
        )
    }

    fn lseek_write(&mut self, offset: u64, bytes: usize) -> SdkResult<()> {
        if self.merged {
            self.ctx.ocall(
                "ocall_lseek_write",
                &mut CallData::new(offset)
                    .with_aux(vec![bytes as u64])
                    .with_in_bytes(bytes),
            )
        } else {
            self.lseek(offset)?;
            self.write(bytes)
        }
    }

    fn fsync(&mut self) -> SdkResult<()> {
        self.ctx.ocall("ocall_fsync", &mut CallData::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_vfs_charges_time() {
        let clock = Clock::new();
        let mut vfs = NativeVfs::new(clock.clone(), 1, IoParams::default());
        vfs.lseek(0).unwrap();
        vfs.write(4096).unwrap();
        vfs.fsync().unwrap();
        vfs.compute(Nanos::from_micros(5)).unwrap();
        // lseek ~0.8us + write ~2.5us + fsync ~8us + compute 5us ≈ 16us.
        let t = clock.now().as_nanos();
        assert!((12_000..22_000).contains(&t), "{t}");
    }

    #[test]
    fn native_vfs_is_deterministic() {
        let run = || {
            let clock = Clock::new();
            let mut vfs = NativeVfs::new(clock.clone(), 7, IoParams::default());
            for i in 0..100 {
                vfs.lseek_write(i * 4096, 4096).unwrap();
            }
            clock.now()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn write_cost_grows_with_size() {
        let host = HostFile::new(3, IoParams::default());
        let small = host.write_cost(128);
        let big = host.write_cost(64 * 4096);
        assert!(big > small * 2, "{small} vs {big}");
    }
}
