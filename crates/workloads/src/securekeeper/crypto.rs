//! The proxy's payload cipher: a keystream cipher in the spirit of
//! AES-CTR, implemented for real (deterministic, invertible) so the proxy
//! actually transforms bytes, with the CPU cost charged to virtual time by
//! the caller.

/// A little-endian 64-bit block keystream generator (xorshift-based —
/// *not* cryptographically secure, a stand-in for AES-CTR's shape: one
/// keystream block per 8 payload bytes, XORed in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Keystream {
    key: u64,
    nonce: u64,
}

impl Keystream {
    /// Creates a keystream for a key/nonce pair.
    pub fn new(key: u64, nonce: u64) -> Keystream {
        Keystream { key, nonce }
    }

    fn block(&self, counter: u64) -> u64 {
        let mut x =
            self.key ^ self.nonce.rotate_left(17) ^ counter.wrapping_mul(0x9e3779b97f4a7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// XORs the keystream over `data` in place. Applying it twice with the
    /// same parameters restores the original (CTR-mode involution).
    pub fn apply(&self, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(8).enumerate() {
            let ks = self.block(i as u64).to_le_bytes();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

/// Encrypts a ZooKeeper path component-wise (the proxy keeps `/` visible
/// so ZooKeeper's hierarchy still works, encrypting only the names).
pub fn encrypt_path(ks: &Keystream, path: &str) -> String {
    path.split('/')
        .map(|component| {
            if component.is_empty() {
                String::new()
            } else {
                let mut bytes = component.as_bytes().to_vec();
                ks.apply(&mut bytes);
                bytes.iter().map(|b| format!("{b:02x}")).collect()
            }
        })
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_twice_is_identity() {
        let ks = Keystream::new(0xdead_beef, 42);
        let original: Vec<u8> = (0..=255).collect();
        let mut data = original.clone();
        ks.apply(&mut data);
        assert_ne!(data, original);
        ks.apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let a = Keystream::new(1, 1);
        let b = Keystream::new(1, 2);
        let mut da = vec![0u8; 64];
        let mut db = vec![0u8; 64];
        a.apply(&mut da);
        b.apply(&mut db);
        assert_ne!(da, db);
    }

    #[test]
    fn path_encryption_preserves_hierarchy() {
        let ks = Keystream::new(7, 9);
        let enc = encrypt_path(&ks, "/app/config/node1");
        assert_eq!(enc.matches('/').count(), 3);
        assert!(enc.starts_with('/'));
        assert!(!enc.contains("app"));
    }

    #[test]
    fn empty_path_components_survive() {
        let ks = Keystream::new(7, 9);
        assert_eq!(encrypt_path(&ks, "/"), "/");
    }
}
