//! The proxy enclaves, the shared connection map and the client driver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sgx_edl::InterfaceSpec;
use sgx_sdk::{CallData, OcallTableBuilder, SdkResult, SgxThreadMutex, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, EnclaveId};
use sim_core::rng::{bimodal, jitter};
use sim_core::sync::Mutex;
use sim_core::Nanos;
use sim_threads::Simulation;

use crate::harness::{Harness, RunStats, Variant};

use super::crypto::Keystream;

/// The per-client proxy interface: two ecalls, six ocalls (two declared
/// here, four implicit sync) — §5.2.4's "very narrow" interface.
pub const PROXY_EDL: &str = r#"
enclave {
    trusted {
        public uint64_t ecall_handle_input_from_client(
            [in, size=len] char* packet, size_t len);
        public uint64_t ecall_handle_input_from_zk(
            [in, size=len] char* packet, size_t len);
    };
    untrusted {
        void ocall_print_debug([in, string] const char* msg);
        void ocall_stat(uint64_t counter);
    };
};
"#;

/// The shared router enclave holding the client→session map (written only
/// on connect — the §5.2.4 contention point).
pub const ROUTER_EDL: &str = r#"
enclave {
    trusted {
        public uint64_t ecall_register_client(uint64_t client_id);
    };
    untrusted {
        void ocall_print_debug([in, string] const char* msg);
        void ocall_stat(uint64_t counter);
    };
};
"#;

/// Workload configuration; defaults model §5.2.4's full-load run.
#[derive(Debug, Clone)]
pub struct SecureKeeperConfig {
    /// Number of concurrently connected clients (each gets an enclave).
    pub clients: usize,
    /// Virtual-time length of the benchmark (the paper analyses 31 s).
    pub duration: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Mean think time between client requests.
    pub request_period: Nanos,
    /// ZooKeeper packet payload size.
    pub payload_bytes: usize,
}

impl Default for SecureKeeperConfig {
    fn default() -> Self {
        SecureKeeperConfig {
            clients: 10,
            duration: Nanos::from_secs(31),
            seed: 0x5ec0_4e14,
            request_period: Nanos::from_micros(410),
            payload_bytes: 512,
        }
    }
}

/// Outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SecureKeeperResult {
    /// Throughput stats (operations = client requests proxied; each is
    /// one client-side and one ZooKeeper-side ecall).
    pub stats: RunStats,
    /// Per-client proxy enclave ids (first one is the usual WSE target).
    pub proxy_enclaves: Vec<EnclaveId>,
    /// The shared router enclave.
    pub router_enclave: EnclaveId,
}

/// The trusted state of one proxy enclave.
struct ProxyState {
    keystream: Keystream,
    packets: u64,
    rng: sim_core::rng::Rng,
}

/// Enclave sizing: 1 MiB of code + 512 KiB heap gives the paper's
/// 322-page start-up working set headroom.
fn proxy_config(clients: usize) -> EnclaveConfig {
    let _ = clients;
    EnclaveConfig {
        code_kib: 1_024,
        heap_kib: 512,
        stack_kib: 64,
        tcs_count: 1,
        ..EnclaveConfig::default()
    }
}

fn build_proxy_enclave(
    harness: &Harness,
    spec: &InterfaceSpec,
    seed: u64,
    payload: usize,
) -> SdkResult<(Arc<sgx_sdk::Enclave>, Arc<sgx_sdk::OcallTable>)> {
    let rt = harness.runtime();
    let enclave = rt.create_enclave(spec, &proxy_config(1))?;
    let eid = enclave.id();
    let code = harness.machine().code_range(eid)?;
    let heap = harness.machine().heap_range(eid)?;
    let state = Arc::new(Mutex::new(ProxyState {
        keystream: Keystream::new(seed, eid.0 as u64),
        packets: 0,
        rng: sim_core::rng::seeded(seed ^ eid.0 as u64),
    }));

    // Start-up initialisation happens on the first ecall: library init
    // touches a large one-off set of code and heap pages (322 total incl.
    // TCS/stack); steady state cycles through a much smaller set (94).
    let register = |name: &'static str, base_us: u64, zk_side: bool| -> SdkResult<()> {
        let state = Arc::clone(&state);
        let code = code.clone();
        let heap = heap.clone();
        enclave.register_ecall(name, move |ctx, data| {
            let mut st = state.lock();
            if st.packets == 0 && !zk_side {
                // One-off start-up: 252 code + 68 heap pages.
                ctx.touch(code.start..code.start + 252, AccessKind::Execute)?;
                ctx.touch(heap.start..heap.start + 68, AccessKind::Write)?;
                ctx.compute(Nanos::from_micros(300))?;
            }
            st.packets += 1;
            // Steady-state working set: 40 hot code pages + 52 rotating
            // heap pages (+ TCS and stack page via entry) = 94.
            let code_page = code.start + (st.packets % 40) as usize;
            ctx.touch(code_page..code_page + 1, AccessKind::Execute)?;
            let heap_page = heap.start + (st.packets % 52) as usize;
            ctx.touch(heap_page..heap_page + 1, AccessKind::Write)?;
            // Real payload transform.
            let mut packet = vec![0u8; data.in_bytes.max(16)];
            st.keystream.apply(&mut packet);
            data.ret = packet.iter().map(|&b| b as u64).sum::<u64>() & 0xff;
            // Parse + en/decrypt cost: client side ≈14 us mean measured
            // (≈9.5 us execution), ZooKeeper side ≈18 us (≈13.5 us), with
            // the occasional slow packet forming Figure 7's tail.
            let mean = Nanos::from_micros(base_us) + Nanos::from_nanos(6 * data.in_bytes as u64);
            let cost = bimodal(&mut st.rng, mean, mean * 2, 0.05);
            drop(st);
            ctx.compute(cost)?;
            Ok(())
        })
    };
    register("ecall_handle_input_from_client", 6, false)?;
    register("ecall_handle_input_from_zk", 10, true)?;
    let _ = payload;

    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_print_debug", |h, _| {
        h.compute(Nanos::from_micros(3));
        Ok(())
    })?;
    builder.register("ocall_stat", |h, _| {
        h.compute(Nanos::from_nanos(400));
        Ok(())
    })?;
    let table = Arc::new(builder.build()?);
    Ok((enclave, table))
}

/// Runs the full-load proxy benchmark: all clients connect simultaneously
/// (contending on the router's map mutex), then proxy requests until the
/// virtual deadline.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn run(harness: &Harness, config: &SecureKeeperConfig) -> SdkResult<SecureKeeperResult> {
    let rt = harness.runtime();

    // Router enclave with the shared, mutex-protected connection map.
    let router_spec = sgx_edl::parse(ROUTER_EDL).expect("static EDL parses");
    let router = rt.create_enclave(
        &router_spec,
        &EnclaveConfig {
            tcs_count: config.clients.max(1),
            ..EnclaveConfig::default()
        },
    )?;
    let map_mutex = Arc::new(SgxThreadMutex::named("map_mutex"));
    let connection_map: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let map_mutex = Arc::clone(&map_mutex);
        let connection_map = Arc::clone(&connection_map);
        router.register_ecall("ecall_register_client", move |ctx, data| {
            map_mutex.lock(ctx)?;
            // Map insert while holding the lock; yielding here models the
            // simultaneous-connect contention of §5.2.4.
            connection_map.lock().push(data.scalar);
            if let Some(sim) = ctx.thread().sim {
                sim.yield_now();
            }
            ctx.compute(Nanos::from_micros(3))?;
            // Debug logging during connection establishment (the
            // "remaining ocalls" of §5.2.4).
            for _ in 0..9 {
                ctx.ocall(
                    "ocall_print_debug",
                    &mut CallData::default().with_in_bytes(48),
                )?;
            }
            map_mutex.unlock(ctx)?;
            data.ret = connection_map.lock().len() as u64;
            Ok(())
        })?;
    }
    let mut router_builder = OcallTableBuilder::new(router.spec());
    router_builder.register("ocall_print_debug", |h, _| {
        h.compute(Nanos::from_micros(3));
        Ok(())
    })?;
    router_builder.register("ocall_stat", |h, _| {
        h.compute(Nanos::from_nanos(400));
        Ok(())
    })?;
    let router_table = Arc::new(router_builder.build()?);

    // One proxy enclave per client.
    let proxy_spec = sgx_edl::parse(PROXY_EDL).expect("static EDL parses");
    let mut proxies = Vec::with_capacity(config.clients);
    for i in 0..config.clients {
        proxies.push(build_proxy_enclave(
            harness,
            &proxy_spec,
            config.seed ^ (i as u64) << 8,
            config.payload_bytes,
        )?);
    }
    let proxy_ids: Vec<EnclaveId> = proxies.iter().map(|(e, _)| e.id()).collect();

    // Client threads. The sync bus makes spawn/join ordering visible to
    // the `sgxperf races` analyses alongside the map-mutex traffic.
    let sim = Simulation::new(harness.clock().clone());
    sim.set_sync_bus(Arc::clone(harness.machine().sync_bus()));
    let total_requests = Arc::new(AtomicU64::new(0));
    let start = harness.clock().now();
    let deadline = start + config.duration;
    for (i, (enclave, table)) in proxies.into_iter().enumerate() {
        let rt = Arc::clone(rt);
        let router_id = router.id();
        let router_table = Arc::clone(&router_table);
        let total = Arc::clone(&total_requests);
        let cfg = config.clone();
        let eid = enclave.id();
        sim.spawn(&format!("client-{i}"), move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            let mut rng = sim_core::rng::seeded(cfg.seed ^ 0xc11e ^ i as u64);
            // Connection phase: all clients pile onto the router map.
            rt.ecall(
                &tcx,
                router_id,
                "ecall_register_client",
                &router_table,
                &mut CallData::new(i as u64),
            )
            .expect("register_client");
            // Steady state: proxy requests until the deadline.
            while ctx.clock().now() < deadline {
                let payload = cfg.payload_bytes + (rng.gen_range(0..cfg.payload_bytes / 2));
                let mut c = CallData::default().with_in_bytes(payload);
                rt.ecall(&tcx, eid, "ecall_handle_input_from_client", &table, &mut c)
                    .expect("client ecall");
                // ZooKeeper turnaround.
                ctx.sleep(jitter(&mut rng, cfg.request_period / 4, 0.3));
                let mut z = CallData::default().with_in_bytes(payload + 32);
                rt.ecall(&tcx, eid, "ecall_handle_input_from_zk", &table, &mut z)
                    .expect("zk ecall");
                total.fetch_add(1, Ordering::SeqCst);
                ctx.sleep(jitter(&mut rng, cfg.request_period, 0.3));
            }
        });
    }
    sim.run();
    Ok(SecureKeeperResult {
        stats: RunStats {
            variant: Variant::Enclave,
            operations: total_requests.load(Ordering::SeqCst),
            elapsed: harness.clock().now() - start,
        },
        proxy_enclaves: proxy_ids,
        router_enclave: router.id(),
    })
}

/// Measures the §5.2.4 working sets on a single proxy enclave: pages
/// touched by start-up (library init on the first packet) vs pages touched
/// by `steady_requests` steady-state packets. Paper: 322 vs 94.
///
/// The `wse` closure attaches the estimator between enclave creation and
/// first use (this is how the separate working-set tool operates — it
/// cannot share a run with the logger, §4).
///
/// # Errors
///
/// Propagates SDK failures.
pub fn working_set_probe(
    harness: &Harness,
    config: &SecureKeeperConfig,
    steady_requests: u64,
) -> SdkResult<(usize, usize)> {
    let proxy_spec = sgx_edl::parse(PROXY_EDL).expect("static EDL parses");
    let (enclave, table) =
        build_proxy_enclave(harness, &proxy_spec, config.seed, config.payload_bytes)?;
    let wse = sgx_perf::WorkingSetEstimator::attach(harness.machine(), enclave.id())
        .map_err(sgx_sdk::SdkError::Sim)?;
    let tcx = ThreadCtx::main();
    let rt = harness.runtime();
    // Start-up: the first packet triggers library initialisation.
    let mut first = CallData::default().with_in_bytes(config.payload_bytes);
    rt.ecall(
        &tcx,
        enclave.id(),
        "ecall_handle_input_from_client",
        &table,
        &mut first,
    )?;
    let startup = wse.mark().map_err(sgx_sdk::SdkError::Sim)?;
    // Steady state.
    for i in 0..steady_requests {
        let mut c = CallData::default().with_in_bytes(config.payload_bytes + (i as usize % 64));
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_handle_input_from_client",
            &table,
            &mut c,
        )?;
        let mut z = CallData::default().with_in_bytes(config.payload_bytes + 32);
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_handle_input_from_zk",
            &table,
            &mut z,
        )?;
    }
    let steady = wse.mark().map_err(sgx_sdk::SdkError::Sim)?;
    wse.detach().map_err(sgx_sdk::SdkError::Sim)?;
    Ok((startup.pages, steady.pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::HwProfile;

    fn short_cfg() -> SecureKeeperConfig {
        SecureKeeperConfig {
            clients: 4,
            duration: Nanos::from_millis(50),
            ..SecureKeeperConfig::default()
        }
    }

    #[test]
    fn edl_parses_with_expected_shape() {
        let spec = sgx_edl::parse(PROXY_EDL).unwrap();
        assert_eq!(spec.ecalls().len(), 2);
        assert_eq!(spec.ocalls().len(), 2); // +4 sync = 6 total
    }

    #[test]
    fn proxies_requests_under_load() {
        let h = Harness::new(HwProfile::Unpatched);
        let res = run(&h, &short_cfg()).unwrap();
        assert!(res.stats.operations > 50, "{}", res.stats.operations);
        assert_eq!(res.proxy_enclaves.len(), 4);
    }

    #[test]
    fn throughput_scale_matches_paper() {
        // Paper: 1.1 M ecalls over 31 s ≈ 550 k requests ≈ 17.7 k req/s.
        let h = Harness::new(HwProfile::Unpatched);
        let res = run(
            &h,
            &SecureKeeperConfig {
                duration: Nanos::from_millis(400),
                ..SecureKeeperConfig::default()
            },
        )
        .unwrap();
        let tput = res.stats.throughput();
        assert!((10_000.0..30_000.0).contains(&tput), "{tput}");
    }

    #[test]
    fn run_is_deterministic() {
        let ops = |_| {
            let h = Harness::new(HwProfile::Unpatched);
            run(&h, &short_cfg()).unwrap().stats.operations
        };
        assert_eq!(ops(0), ops(1));
    }

    #[test]
    fn working_sets_match_paper() {
        // §5.2.4: 322 pages at start-up, 94 during execution.
        let h = Harness::new(HwProfile::Unpatched);
        let (startup, steady) = working_set_probe(&h, &SecureKeeperConfig::default(), 200).unwrap();
        assert_eq!(startup, 322);
        assert_eq!(steady, 94);
    }
}
