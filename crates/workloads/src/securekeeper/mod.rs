//! The SecureKeeper workload (§5.2.4, Figures 7 and 8).
//!
//! SecureKeeper is a secure ZooKeeper: an SGX proxy sits between clients
//! and ZooKeeper and transparently en-/decrypts the payload and path of
//! every packet. Its enclave interface is deliberately narrow — two ecalls
//! (`handle_input_from_client`, `handle_input_from_zk`) and six ocalls —
//! and it spawns **one enclave per client**. The paper records 1.1 million
//! ecall events over a 31-second full-load run, finds mean ecall durations
//! of ≈14 µs and ≈18 µs (4–6× the transition cost, so no short-call
//! problems), observes 18 synchronisation ocalls from map contention
//! during the connection phase, and measures a working set of 322 pages at
//! start-up vs 94 pages in steady state.
//!
//! [`crypto`] implements the payload cipher; [`proxy`] the proxy enclaves,
//! the shared-map router and the client driver.

pub mod crypto;
pub mod proxy;

pub use proxy::{run, working_set_probe, SecureKeeperConfig, SecureKeeperResult};
