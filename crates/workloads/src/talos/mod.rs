//! The TaLoS + nginx workload (§5.2.1, Figure 5).
//!
//! TaLoS is an enclavised LibreSSL exposing the **OpenSSL API as its ecall
//! interface** so it can be a drop-in replacement: 207 ecalls and 61
//! ocalls. Driven by an nginx-like host serving 1000 HTTPS GET requests,
//! the paper observes 27,631 ecall and 28,969 ocall events, with 60.78% of
//! ecalls and 73.69% of ocalls shorter than 10 µs — the error-queue
//! (`ERR_*`) calls and the per-chunk read/write ocalls being the main
//! offenders. The conclusion: the OpenSSL interface is unsuitable as an
//! enclave interface.
//!
//! [`tls`] implements the enclave side (session state machine, error
//! queue, chunked record I/O); [`run`] drives the host.

pub mod nginx;
pub mod tls;

pub use nginx::{run, TalosConfig, TalosResult};
