//! The enclave side of TaLoS: TLS session state, the OpenSSL error queue,
//! and the per-call execution-time model.

use std::collections::HashMap;

use sim_core::rng::jitter;
use sim_core::sync::Mutex;
use sim_core::Nanos;

/// OpenSSL-style error codes pushed onto the error queue.
pub const SSL_ERROR_NONE: u64 = 0;
/// The operation needs more input from the socket.
pub const SSL_ERROR_WANT_READ: u64 = 2;

/// Handshake progress of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeState {
    /// Fresh session.
    Idle,
    /// First `SSL_do_handshake` returned WANT_READ (client hello not yet
    /// complete) — nginx will call again.
    InProgress,
    /// Handshake complete; application data may flow.
    Established,
    /// `SSL_shutdown` completed.
    Shutdown,
}

/// One TLS session inside the enclave.
#[derive(Debug)]
pub struct TlsSession {
    /// Connection id (also the simulated fd after `SSL_set_fd`).
    pub id: u64,
    /// Socket fd bound via `SSL_set_fd`.
    pub fd: Option<u64>,
    /// Server (accept) vs client mode.
    pub accept_mode: bool,
    /// Handshake progress.
    pub state: HandshakeState,
    /// The OpenSSL error queue: errors are not returned, they are pushed
    /// here and retrieved through `ERR_peek_error`/`ERR_clear_error` —
    /// extra ecalls in the TaLoS design.
    pub error_queue: Vec<u64>,
    /// Plaintext bytes buffered from the last record decrypt.
    pub buffered: usize,
    /// How many `SSL_read`s were served from the buffer.
    pub reads_done: u32,
}

impl TlsSession {
    fn new(id: u64) -> TlsSession {
        TlsSession {
            id,
            fd: None,
            accept_mode: false,
            state: HandshakeState::Idle,
            error_queue: Vec::new(),
            buffered: 0,
            reads_done: 0,
        }
    }
}

/// What a session operation asks the host runtime to do: time to burn
/// inside the enclave and ocalls to issue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpEffects {
    /// Trusted computation for this call.
    pub compute: Nanos,
    /// Socket reads to issue (`enclave_ocall_read`).
    pub socket_reads: u32,
    /// Socket writes to issue (`enclave_ocall_write`), with per-write
    /// payload bytes.
    pub socket_writes: Vec<usize>,
    /// Info-callback ocalls (`execute_ssl_ctx_info_callback`).
    pub info_callbacks: u32,
    /// ALPN selection ocalls.
    pub alpn_callbacks: u32,
    /// Untrusted allocation ocalls.
    pub mallocs: u32,
    /// Untrusted free ocalls.
    pub frees: u32,
    /// Time-query ocalls.
    pub gettimes: u32,
    /// The call's return value.
    pub ret: u64,
}

/// All TaLoS sessions of the enclave plus the timing RNG.
#[derive(Debug)]
pub struct TlsState {
    sessions: HashMap<u64, TlsSession>,
    next_id: u64,
    rng: Mutex<sim_core::rng::Rng>,
}

impl TlsState {
    /// Creates the enclave-global state.
    pub fn new(seed: u64) -> TlsState {
        TlsState {
            sessions: HashMap::new(),
            next_id: 1,
            rng: Mutex::new(sim_core::rng::seeded(seed)),
        }
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    fn cost(&self, mean: Nanos) -> Nanos {
        jitter(&mut self.rng.lock(), mean, 0.12)
    }

    /// `SSL_new`: allocates a session.
    pub fn ssl_new(&mut self) -> OpEffects {
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(id, TlsSession::new(id));
        OpEffects {
            compute: self.cost(Nanos::from_micros(8)),
            mallocs: 1,
            ret: id,
            ..OpEffects::default()
        }
    }

    /// `SSL_set_fd`.
    pub fn ssl_set_fd(&mut self, id: u64, fd: u64) -> OpEffects {
        if let Some(s) = self.sessions.get_mut(&id) {
            s.fd = Some(fd);
        }
        OpEffects {
            compute: self.cost(Nanos::from_nanos(900)),
            ret: 1,
            ..OpEffects::default()
        }
    }

    /// `SSL_set_accept_state`.
    pub fn ssl_set_accept_state(&mut self, id: u64) -> OpEffects {
        if let Some(s) = self.sessions.get_mut(&id) {
            s.accept_mode = true;
        }
        OpEffects {
            compute: self.cost(Nanos::from_nanos(500)),
            ret: 1,
            ..OpEffects::default()
        }
    }

    /// `SSL_do_handshake`: the heavy call. Roughly one in seven
    /// connections needs a second invocation (short first flight →
    /// WANT_READ), reproducing the retry counts of Figure 5.
    pub fn ssl_do_handshake(&mut self, id: u64) -> OpEffects {
        let Some(s) = self.sessions.get_mut(&id) else {
            return OpEffects::default();
        };
        match s.state {
            HandshakeState::Idle if s.id % 7 == 0 => {
                s.state = HandshakeState::InProgress;
                s.error_queue.push(SSL_ERROR_WANT_READ);
                OpEffects {
                    compute: self.cost(Nanos::from_micros(28)),
                    socket_reads: 1,
                    ret: 0, // not finished
                    ..OpEffects::default()
                }
            }
            HandshakeState::Idle | HandshakeState::InProgress => {
                let retry = s.state == HandshakeState::InProgress;
                s.state = HandshakeState::Established;
                s.buffered = 0;
                OpEffects {
                    // Full asymmetric crypto: ~180 us inside the enclave.
                    compute: self.cost(Nanos::from_micros(180)),
                    socket_reads: if retry { 1 } else { 2 },
                    socket_writes: vec![1_600, 900, 300],
                    info_callbacks: 3,
                    alpn_callbacks: 1,
                    gettimes: 2,
                    mallocs: 1,
                    ret: 1,
                    ..OpEffects::default()
                }
            }
            _ => OpEffects {
                compute: self.cost(Nanos::from_micros(2)),
                ret: 1,
                ..OpEffects::default()
            },
        }
    }

    /// `SSL_read`: the first two reads per request hit the socket (record
    /// fetch + decrypt), later ones are served from the plaintext buffer.
    pub fn ssl_read(&mut self, id: u64, want: usize) -> OpEffects {
        let Some(s) = self.sessions.get_mut(&id) else {
            return OpEffects::default();
        };
        s.reads_done += 1;
        if s.reads_done <= 2 {
            s.buffered = 16 * 1024;
            let take = want.min(s.buffered);
            s.buffered -= take;
            OpEffects {
                compute: self.cost(Nanos::from_micros(14)), // record decrypt
                socket_reads: 1,
                ret: take as u64,
                ..OpEffects::default()
            }
        } else {
            let take = want.min(s.buffered);
            s.buffered -= take;
            if take == 0 {
                s.error_queue.push(SSL_ERROR_WANT_READ);
            }
            OpEffects {
                compute: self.cost(Nanos::from_micros(11)), // copy + MAC
                ret: take as u64,
                ..OpEffects::default()
            }
        }
    }

    /// `SSL_write`: encrypts `len` bytes and sends them in MTU-sized
    /// record chunks — each chunk one `enclave_ocall_write`.
    pub fn ssl_write(&mut self, id: u64, len: usize) -> OpEffects {
        let Some(_s) = self.sessions.get_mut(&id) else {
            return OpEffects::default();
        };
        let chunks = len.div_ceil(1_400).max(1);
        OpEffects {
            compute: self.cost(Nanos::from_micros(6) * chunks as u64),
            socket_writes: vec![1_400; chunks],
            ret: len as u64,
            ..OpEffects::default()
        }
    }

    /// `SSL_shutdown`: close-notify exchange.
    pub fn ssl_shutdown(&mut self, id: u64) -> OpEffects {
        if let Some(s) = self.sessions.get_mut(&id) {
            s.state = HandshakeState::Shutdown;
        }
        OpEffects {
            compute: self.cost(Nanos::from_micros(5)),
            socket_writes: vec![31, 31],
            ret: 1,
            ..OpEffects::default()
        }
    }

    /// `SSL_free`: releases the session and its untrusted mirror buffers.
    pub fn ssl_free(&mut self, id: u64) -> OpEffects {
        self.sessions.remove(&id);
        OpEffects {
            compute: self.cost(Nanos::from_micros(4)),
            frees: 2,
            ..OpEffects::default()
        }
    }

    /// `SSL_get_error`: inspects the last result.
    pub fn ssl_get_error(&mut self, id: u64) -> OpEffects {
        let ret = self
            .sessions
            .get(&id)
            .and_then(|s| s.error_queue.last().copied())
            .unwrap_or(SSL_ERROR_NONE);
        OpEffects {
            compute: self.cost(Nanos::from_nanos(400)),
            ret,
            ..OpEffects::default()
        }
    }

    /// `ERR_peek_error`: looks at the queue head without popping.
    pub fn err_peek_error(&mut self, id: u64) -> OpEffects {
        let ret = self
            .sessions
            .get(&id)
            .and_then(|s| s.error_queue.first().copied())
            .unwrap_or(SSL_ERROR_NONE);
        OpEffects {
            compute: self.cost(Nanos::from_nanos(300)),
            ret,
            ..OpEffects::default()
        }
    }

    /// `ERR_clear_error`: drops all queued errors.
    pub fn err_clear_error(&mut self, id: u64) -> OpEffects {
        if let Some(s) = self.sessions.get_mut(&id) {
            s.error_queue.clear();
        }
        OpEffects {
            compute: self.cost(Nanos::from_nanos(300)),
            ..OpEffects::default()
        }
    }

    /// Trivial accessors (`SSL_get_rbio`, `BIO_int_ctrl`, `SSL_pending`,
    /// `SSL_ctrl`, `SSL_get_verify_result`, and the SSL_CTX configuration
    /// family): sub-microsecond getter/setter calls.
    pub fn trivial(&mut self) -> OpEffects {
        OpEffects {
            compute: self.cost(Nanos::from_nanos(350)),
            ret: 1,
            ..OpEffects::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_reaches_established() {
        let mut st = TlsState::new(1);
        let id = st.ssl_new().ret;
        st.ssl_set_fd(id, 9);
        st.ssl_set_accept_state(id);
        let hs = st.ssl_do_handshake(id);
        assert_eq!(hs.ret, 1);
        assert_eq!(hs.socket_reads, 2);
        assert_eq!(hs.socket_writes.len(), 3);
        assert_eq!(st.session_count(), 1);
        st.ssl_free(id);
        assert_eq!(st.session_count(), 0);
    }

    #[test]
    fn one_in_seven_handshakes_retries() {
        let mut st = TlsState::new(2);
        let mut retries = 0;
        for _ in 0..700 {
            let id = st.ssl_new().ret;
            st.ssl_set_accept_state(id);
            let first = st.ssl_do_handshake(id);
            if first.ret == 0 {
                retries += 1;
                let second = st.ssl_do_handshake(id);
                assert_eq!(second.ret, 1);
            }
            st.ssl_free(id);
        }
        assert_eq!(retries, 100);
    }

    #[test]
    fn error_queue_requires_separate_calls() {
        // The OpenSSL design the paper criticises: errors are not
        // returned, they sit in a queue behind extra ecalls.
        let mut st = TlsState::new(3);
        let id = st.ssl_new().ret;
        st.ssl_set_accept_state(id);
        // Exhaust the read buffer to generate WANT_READ.
        st.ssl_do_handshake(id);
        while st.ssl_do_handshake(id).ret != 1 {}
        st.ssl_read(id, 16 * 1024);
        st.ssl_read(id, 16 * 1024);
        st.ssl_read(id, 16 * 1024); // buffered, drains to 0
        let e = st.ssl_read(id, 1024); // empty -> WANT_READ queued
        assert_eq!(e.ret, 0);
        assert_eq!(st.err_peek_error(id).ret, SSL_ERROR_WANT_READ);
        st.err_clear_error(id);
        assert_eq!(st.err_peek_error(id).ret, SSL_ERROR_NONE);
    }

    #[test]
    fn write_chunks_by_mtu() {
        let mut st = TlsState::new(4);
        let id = st.ssl_new().ret;
        let fx = st.ssl_write(id, 16 * 1024);
        assert_eq!(fx.socket_writes.len(), 12);
        assert_eq!(fx.ret, 16 * 1024);
    }
}
