//! The nginx-like host: builds the TaLoS interface (207 ecalls / 61
//! ocalls), registers the enclave implementation and serves HTTPS GET
//! requests against it.

use std::sync::Arc;

use sgx_edl::{InterfaceBuilder, InterfaceSpec, ParamSpec, PointerDir};
use sgx_sdk::{CallData, EcallCtx, OcallTableBuilder, SdkResult, ThreadCtx};
use sgx_sim::EnclaveConfig;
use sim_core::rng::jitter;
use sim_core::sync::Mutex;
use sim_core::Nanos;

use crate::harness::{Harness, RunStats, Variant};

use super::tls::{OpEffects, TlsState};

/// Number of SSL_CTX-configuration ecalls invoked once at server start.
const STARTUP_ECALLS: usize = 46;
/// Filler trusted functions so the interface reaches the published 207.
const FILLER_ECALLS: usize = 207 - 15 - STARTUP_ECALLS;
/// Filler untrusted functions so the interface reaches the published 61
/// (10 called + 4 implicit sync + fillers).
const FILLER_OCALLS: usize = 61 - 10 - 4;

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct TalosConfig {
    /// Number of HTTPS GET requests (the paper uses 1000 curl requests).
    pub requests: u64,
    /// RNG seed.
    pub seed: u64,
    /// Response body size (drives `SSL_write` chunking).
    pub response_bytes: usize,
}

impl Default for TalosConfig {
    fn default() -> Self {
        TalosConfig {
            requests: 1_000,
            seed: 0x7a10_57a5,
            response_bytes: 16 * 1024,
        }
    }
}

/// Outcome of a TaLoS run.
#[derive(Debug, Clone, PartialEq)]
pub struct TalosResult {
    /// Throughput stats (operations = requests served).
    pub stats: RunStats,
    /// The enclave id.
    pub enclave: sgx_sim::EnclaveId,
}

/// Builds the TaLoS enclave interface: the OpenSSL API surface as ecalls.
/// `ecall_SSL_write` takes its buffer as `user_check` — the real TaLoS
/// security issue the paper cites (§3.6, the paper's reference \[19\]).
pub fn talos_interface() -> InterfaceSpec {
    let mut b = InterfaceBuilder::new();
    for name in [
        "ecall_SSL_new",
        "ecall_SSL_set_fd",
        "ecall_SSL_set_accept_state",
        "ecall_SSL_do_handshake",
        "ecall_SSL_read",
        "ecall_SSL_get_error",
        "ecall_ERR_peek_error",
        "ecall_ERR_clear_error",
        "ecall_SSL_get_rbio",
        "ecall_BIO_int_ctrl",
        "ecall_SSL_ctrl",
        "ecall_SSL_get_verify_result",
        "ecall_SSL_shutdown",
        "ecall_SSL_free",
    ] {
        b = b.public_ecall(name, vec![ParamSpec::value("ssl", "uint64_t")]);
    }
    b = b.public_ecall(
        "ecall_SSL_write",
        vec![
            ParamSpec::value("ssl", "uint64_t"),
            ParamSpec::pointer("buf", "void", PointerDir::UserCheck),
            ParamSpec::value("len", "size_t"),
        ],
    );
    for i in 0..STARTUP_ECALLS {
        b = b.public_ecall(&format!("ecall_SSL_CTX_cfg_{i}"), vec![]);
    }
    for i in 0..FILLER_ECALLS {
        b = b.public_ecall(&format!("ecall_talos_gen_{i}"), vec![]);
    }
    for name in [
        "enclave_ocall_read",
        "enclave_ocall_write",
        "enclave_ocall_execute_ssl_ctx_info_callback",
        "enclave_ocall_alpn_select_cb",
        "ocall_malloc",
        "ocall_free",
        "ocall_gettime",
        "ocall_open",
        "ocall_stat",
        "ocall_close",
    ] {
        b = b.ocall(name, vec![ParamSpec::value("arg", "uint64_t")]);
    }
    for i in 0..FILLER_OCALLS {
        b = b.ocall(&format!("ocall_talos_gen_{i}"), vec![]);
    }
    b.build().expect("static interface is valid")
}

/// Applies the enclave-side effects of one TLS operation: trusted compute,
/// then the requested ocalls through the (logger-rewritable) table.
fn apply(ctx: &mut EcallCtx<'_>, fx: &OpEffects, data: &mut CallData) -> SdkResult<()> {
    ctx.compute(fx.compute)?;
    for _ in 0..fx.socket_reads {
        ctx.ocall(
            "enclave_ocall_read",
            &mut CallData::default().with_out_bytes(16 * 1024),
        )?;
    }
    for &bytes in &fx.socket_writes {
        ctx.ocall(
            "enclave_ocall_write",
            &mut CallData::new(bytes as u64).with_in_bytes(bytes),
        )?;
    }
    for _ in 0..fx.info_callbacks {
        ctx.ocall(
            "enclave_ocall_execute_ssl_ctx_info_callback",
            &mut CallData::default(),
        )?;
    }
    for _ in 0..fx.alpn_callbacks {
        ctx.ocall("enclave_ocall_alpn_select_cb", &mut CallData::default())?;
    }
    for _ in 0..fx.mallocs {
        ctx.ocall("ocall_malloc", &mut CallData::new(4_096))?;
    }
    for _ in 0..fx.frees {
        ctx.ocall("ocall_free", &mut CallData::default())?;
    }
    for _ in 0..fx.gettimes {
        ctx.ocall("ocall_gettime", &mut CallData::default())?;
    }
    data.ret = fx.ret;
    Ok(())
}

fn register_enclave_side(
    enclave: &sgx_sdk::Enclave,
    state: &Arc<Mutex<TlsState>>,
) -> SdkResult<()> {
    macro_rules! reg {
        ($name:literal, |$st:ident, $data:ident| $fx:expr) => {{
            let state = Arc::clone(state);
            enclave.register_ecall($name, move |ctx, data| {
                let fx = {
                    let mut $st = state.lock();
                    let $data = &*data;
                    $fx
                };
                apply(ctx, &fx, data)
            })?;
        }};
    }
    reg!("ecall_SSL_new", |st, _d| st.ssl_new());
    reg!("ecall_SSL_set_fd", |st, d| st
        .ssl_set_fd(d.scalar, d.aux.first().copied().unwrap_or(0)));
    reg!("ecall_SSL_set_accept_state", |st, d| st
        .ssl_set_accept_state(d.scalar));
    reg!("ecall_SSL_do_handshake", |st, d| st
        .ssl_do_handshake(d.scalar));
    reg!("ecall_SSL_read", |st, d| st.ssl_read(d.scalar, 4_096));
    reg!("ecall_SSL_write", |st, d| st.ssl_write(
        d.scalar,
        d.aux.first().copied().unwrap_or(0) as usize
    ));
    reg!("ecall_SSL_get_error", |st, d| st.ssl_get_error(d.scalar));
    reg!("ecall_ERR_peek_error", |st, d| st.err_peek_error(d.scalar));
    reg!("ecall_ERR_clear_error", |st, d| st
        .err_clear_error(d.scalar));
    reg!("ecall_SSL_shutdown", |st, d| st.ssl_shutdown(d.scalar));
    reg!("ecall_SSL_free", |st, d| st.ssl_free(d.scalar));
    for name in [
        "ecall_SSL_get_rbio",
        "ecall_BIO_int_ctrl",
        "ecall_SSL_ctrl",
        "ecall_SSL_get_verify_result",
    ] {
        let state = Arc::clone(state);
        enclave.register_ecall(name, move |ctx, data| {
            let fx = state.lock().trivial();
            apply(ctx, &fx, data)
        })?;
    }
    // The SSL_CTX configuration family called at server start. The first
    // one loads the certificate chain from disk (open/stat/close ocalls).
    {
        let state = Arc::clone(state);
        enclave.register_ecall("ecall_SSL_CTX_cfg_0", move |ctx, data| {
            let fx = state.lock().trivial();
            ctx.ocall("ocall_open", &mut CallData::default())?;
            ctx.ocall("ocall_stat", &mut CallData::default())?;
            ctx.ocall("ocall_close", &mut CallData::default())?;
            apply(ctx, &fx, data)
        })?;
    }
    for i in 1..STARTUP_ECALLS {
        let state = Arc::clone(state);
        enclave.register_ecall(&format!("ecall_SSL_CTX_cfg_{i}"), move |ctx, data| {
            let fx = state.lock().trivial();
            apply(ctx, &fx, data)
        })?;
    }
    Ok(())
}

fn build_ocall_table(spec: &InterfaceSpec, seed: u64) -> SdkResult<sgx_sdk::OcallTable> {
    let rng: Arc<Mutex<sim_core::rng::Rng>> = Arc::new(Mutex::new(sim_core::rng::seeded(seed)));
    let mut builder = OcallTableBuilder::new(spec);
    {
        let rng = Arc::clone(&rng);
        builder.register("enclave_ocall_read", move |h, _| {
            // Blocking socket read: the long ocall family.
            h.compute(jitter(&mut rng.lock(), Nanos::from_micros(12), 0.2));
            Ok(())
        })?;
    }
    {
        let rng = Arc::clone(&rng);
        builder.register("enclave_ocall_write", move |h, data| {
            // Handshake flights flush (slow); response chunks hit the
            // socket buffer (fast).
            let mean = if matches!(data.scalar, 1_600 | 900 | 300) {
                Nanos::from_micros(14)
            } else {
                Nanos::from_micros(6)
            };
            h.compute(jitter(&mut rng.lock(), mean, 0.2));
            Ok(())
        })?;
    }
    for (name, us) in [
        ("enclave_ocall_execute_ssl_ctx_info_callback", 2u64),
        ("enclave_ocall_alpn_select_cb", 2),
        ("ocall_malloc", 1),
        ("ocall_free", 1),
        ("ocall_open", 9),
        ("ocall_stat", 4),
        ("ocall_close", 3),
    ] {
        let rng = Arc::clone(&rng);
        builder.register(name, move |h, _| {
            h.compute(jitter(&mut rng.lock(), Nanos::from_micros(us), 0.2));
            Ok(())
        })?;
    }
    builder.register("ocall_gettime", |h, _| {
        h.compute(Nanos::from_nanos(300));
        Ok(())
    })?;
    for i in 0..FILLER_OCALLS {
        builder.register(&format!("ocall_talos_gen_{i}"), |_, _| Ok(()))?;
    }
    builder.build()
}

/// Runs the nginx+TaLoS workload: server start-up (SSL_CTX configuration)
/// followed by `config.requests` HTTPS GET requests, each exercising the
/// accept/read/write/shutdown path of §5.2.1.
///
/// TaLoS has no optimised variant in the paper (being a drop-in
/// replacement blocks the interface changes), so there is no
/// [`Variant`] knob here.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn run(harness: &Harness, config: &TalosConfig) -> SdkResult<TalosResult> {
    let spec = talos_interface();
    let rt = harness.runtime();
    let enclave = rt.create_enclave(
        &spec,
        &EnclaveConfig {
            code_kib: 1_024, // LibreSSL is big
            heap_kib: 1_024,
            ..EnclaveConfig::default()
        },
    )?;
    let state = Arc::new(Mutex::new(TlsState::new(config.seed)));
    register_enclave_side(&enclave, &state)?;
    let table = Arc::new(build_ocall_table(enclave.spec(), config.seed ^ 0xabc)?);
    let tcx = ThreadCtx::main();
    let eid = enclave.id();

    let call = |name: &str, data: &mut CallData| rt.ecall(&tcx, eid, name, &table, data);

    // Server start-up: configure the SSL context.
    for i in 0..STARTUP_ECALLS {
        call(&format!("ecall_SSL_CTX_cfg_{i}"), &mut CallData::default())?;
        call(&format!("ecall_SSL_CTX_cfg_{i}"), &mut CallData::default())?;
    }

    let start = harness.clock().now();
    let mut served = 0u64;
    for _ in 0..config.requests {
        // Accept phase.
        let mut d = CallData::default();
        call("ecall_SSL_new", &mut d)?;
        let ssl = d.ret;
        call(
            "ecall_SSL_set_fd",
            &mut CallData::new(ssl).with_aux(vec![ssl + 100]),
        )?;
        call("ecall_SSL_set_accept_state", &mut CallData::new(ssl))?;
        loop {
            let mut hs = CallData::new(ssl);
            call("ecall_SSL_do_handshake", &mut hs)?;
            if hs.ret == 1 {
                break;
            }
            // nginx inspects the error before retrying.
            call("ecall_SSL_get_error", &mut CallData::new(ssl))?;
            call("ecall_ERR_peek_error", &mut CallData::new(ssl))?;
        }
        call("ecall_ERR_clear_error", &mut CallData::new(ssl))?;

        // Read the request (nginx reads until the headers are complete).
        for _ in 0..5 {
            let mut rd = CallData::new(ssl);
            call("ecall_SSL_read", &mut rd)?;
            call("ecall_SSL_get_error", &mut CallData::new(ssl))?;
            call("ecall_ERR_peek_error", &mut CallData::new(ssl))?;
        }
        call("ecall_SSL_ctrl", &mut CallData::new(ssl))?;
        call("ecall_SSL_get_verify_result", &mut CallData::new(ssl))?;

        // Send the response.
        call(
            "ecall_SSL_write",
            &mut CallData::new(ssl)
                .with_aux(vec![config.response_bytes as u64])
                .with_in_bytes(config.response_bytes),
        )?;
        call("ecall_SSL_get_rbio", &mut CallData::new(ssl))?;
        call("ecall_SSL_get_rbio", &mut CallData::new(ssl))?;
        call("ecall_BIO_int_ctrl", &mut CallData::new(ssl))?;
        call("ecall_ERR_clear_error", &mut CallData::new(ssl))?;

        // Teardown.
        call("ecall_SSL_shutdown", &mut CallData::new(ssl))?;
        call("ecall_SSL_free", &mut CallData::new(ssl))?;
        served += 1;
    }
    Ok(TalosResult {
        stats: RunStats {
            variant: Variant::Enclave,
            operations: served,
            elapsed: harness.clock().now() - start,
        },
        enclave: eid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::HwProfile;

    #[test]
    fn interface_has_published_size() {
        let spec = talos_interface();
        assert_eq!(spec.ecalls().len(), 207);
        assert_eq!(spec.ocalls().len(), 57); // +4 implicit sync = 61
                                             // The TaLoS SSL_write user_check issue is present.
        assert!(spec
            .user_check_params()
            .iter()
            .any(|(call, param)| call == "ecall_SSL_write" && param == "buf"));
    }

    #[test]
    fn serves_requests() {
        let h = Harness::new(HwProfile::Unpatched);
        let res = run(
            &h,
            &TalosConfig {
                requests: 50,
                ..TalosConfig::default()
            },
        )
        .unwrap();
        assert_eq!(res.stats.operations, 50);
        assert!(res.stats.elapsed > Nanos::ZERO);
    }

    #[test]
    fn run_is_deterministic() {
        let elapsed = |seed| {
            let h = Harness::new(HwProfile::Unpatched);
            run(
                &h,
                &TalosConfig {
                    requests: 30,
                    seed,
                    ..TalosConfig::default()
                },
            )
            .unwrap()
            .stats
            .elapsed
        };
        assert_eq!(elapsed(5), elapsed(5));
        assert_ne!(elapsed(5), elapsed(6));
    }
}
