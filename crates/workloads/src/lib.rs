//! The four SGX applications analysed in §5 of the sgx-perf paper,
//! reproduced against the simulated SGX stack:
//!
//! * [`talos`] — TaLoS, an enclavised LibreSSL exposing the OpenSSL API as
//!   its ecall interface, driven by an nginx-like host serving 1000 HTTP
//!   GET requests (§5.2.1, Figure 5),
//! * [`sqlitedb`] — a small embedded SQL-ish storage engine running inside
//!   an enclave with lseek/write/fsync implemented naïvely as ocalls, plus
//!   the merged-ocall optimisation sgx-perf recommends (§5.2.2, Figure 6),
//! * [`glamdring`] — a Glamdring-partitioned LibreSSL signing benchmark
//!   whose hot `bn_sub_part_words` ecall dominates, plus the
//!   move-into-enclave optimisation (§5.2.3, Figure 6),
//! * [`securekeeper`] — a SecureKeeper-style encrypting ZooKeeper proxy
//!   with per-client enclaves and SDK mutex contention during the connect
//!   phase (§5.2.4, Figures 7 and 8),
//!
//! plus [`antipatterns`] — one micro-workload per Table 1 problem class,
//! used to validate the analyzer's detectors — [`switchless_loop`] — a
//! request server whose hot short ocalls the analyzer recommends serving
//! switchlessly, closing the detect → apply → re-measure loop — and
//! [`supervisor_loop`] — a stateful server that loses its enclave mid-run
//! and recovers under the SDK supervisor with the same application-level
//! checksum — and [`racy_fixture`] — a deliberately broken two-thread
//! workload seeding a data race and a lock inversion that only the
//! `sgxperf races` analyses can see.
//!
//! Each workload supports the three execution variants of Figure 6
//! ([`Variant`]): native (no enclave), enclavised, and optimised per the
//! sgx-perf recommendations. All timing flows through the shared virtual
//! clock, so attaching the sgx-perf [`Logger`](sgx_perf::Logger) before a
//! run yields the traces the paper analyses.

pub mod antipatterns;
pub mod campaign;
pub mod chaos;
pub mod fleet;
pub mod glamdring;
pub mod harness;
pub mod racy_fixture;
pub mod securekeeper;
pub mod sqlitedb;
pub mod stressors;
pub mod supervisor_loop;
pub mod switchless_loop;
pub mod talos;

pub use harness::{Harness, RunStats, Variant};
