//! Smoke tests of the `sgxperf` command-line analyser.

use std::process::Command;
use std::sync::Arc;

use sgx_perf::{Logger, LoggerConfig};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::{Clock, HwProfile, Nanos};

/// Records a small trace with one hot ecall + nested ocall and writes it
/// to a temp file; returns the path.
fn record_trace(tag: &str) -> std::path::PathBuf {
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_step(uint64_t i); };
                   untrusted { void ocall_note(uint64_t i); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_step", |ctx, data| {
            ctx.compute(Nanos::from_micros(1))?;
            ctx.ocall("ocall_note", &mut CallData::new(data.scalar))
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder
        .register("ocall_note", |h, _| {
            h.compute(Nanos::from_nanos(300));
            Ok(())
        })
        .unwrap();
    let table = Arc::new(builder.build().unwrap());
    let logger = Logger::attach(&rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    for i in 0..64 {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_step",
            &table,
            &mut CallData::new(i),
        )
        .unwrap();
    }
    let dir = std::env::temp_dir().join("sgxperf-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.evdb"));
    logger.finish().save(&path).unwrap();
    path
}

fn sgxperf(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_sgxperf"))
        .args(args)
        .output()
        .expect("spawn sgxperf");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Like [`sgxperf`] but returns the raw exit code — the diff verdict is
/// an exit-code contract (0 / 3), not just success/failure.
fn sgxperf_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_sgxperf"))
        .args(args)
        .output()
        .expect("spawn sgxperf");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("exit code"),
    )
}

/// Minimal structural JSON check: balanced braces/brackets outside
/// strings and non-empty — catches malformed hand-rolled output without
/// a parser dependency.
fn assert_balanced_json(s: &str) {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut esc = false;
    for c in s.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced JSON: {s}");
    }
    assert_eq!(depth, 0, "unbalanced JSON: {s}");
    assert!(!in_str, "unterminated string in JSON: {s}");
    assert!(s.trim_start().starts_with('{'), "not an object: {s}");
}

#[test]
fn report_command_prints_findings() {
    let trace = record_trace("report");
    let (stdout, _, ok) = sgxperf(&["report", trace.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("sgx-perf analysis report"), "{stdout}");
    assert!(stdout.contains("ecall_step"), "{stdout}");
    // The 1 us ecall in a tight loop must be flagged.
    assert!(
        stdout.contains("SISC") || stdout.contains("batch"),
        "{stdout}"
    );
}

#[test]
fn dot_command_emits_graphviz() {
    let trace = record_trace("dot");
    let (stdout, _, ok) = sgxperf(&["dot", trace.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"), "{stdout}");
    assert!(stdout.contains("ocall_note"), "{stdout}");
}

#[test]
fn hist_command_renders_ascii() {
    let trace = record_trace("hist");
    let (stdout, _, ok) = sgxperf(&["hist", trace.to_str().unwrap(), "ecall_step"]);
    assert!(ok);
    assert!(stdout.contains('#'), "{stdout}");
}

#[test]
fn scatter_command_emits_csv() {
    let trace = record_trace("scatter");
    let (stdout, _, ok) = sgxperf(&["scatter", trace.to_str().unwrap(), "ecall_step"]);
    assert!(ok);
    assert!(stdout.starts_with("time_ns,duration_ns"), "{stdout}");
    assert_eq!(stdout.lines().count(), 65); // header + 64 points
}

#[test]
fn info_command_counts_tables() {
    let trace = record_trace("info");
    let (stdout, _, ok) = sgxperf(&["info", trace.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("ecalls: 64"), "{stdout}");
    assert!(stdout.contains("ocalls: 64"), "{stdout}");
}

/// EDL with one exercised `user_check` ecall and one dead public ecall —
/// the cross-check scenario. Returned paths: (edl file, trace file).
fn record_lint_scenario(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    const EDL: &str = "enclave {
    trusted {
        public void ecall_step([user_check] void* p);
        public void ecall_never();
    };
    untrusted {
        void ocall_note(uint64_t i);
    };
};\n";
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(EDL).unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_step", |ctx, data| {
            ctx.compute(Nanos::from_micros(1))?;
            ctx.ocall("ocall_note", &mut CallData::new(data.scalar))
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder
        .register("ocall_note", |h, _| {
            h.compute(Nanos::from_nanos(300));
            Ok(())
        })
        .unwrap();
    let table = Arc::new(builder.build().unwrap());
    let logger = Logger::attach(&rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    for i in 0..16 {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_step",
            &table,
            &mut CallData::new(i),
        )
        .unwrap();
    }
    let dir = std::env::temp_dir().join("sgxperf-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let edl_path = dir.join(format!("{tag}.edl"));
    std::fs::write(&edl_path, EDL).unwrap();
    let trace_path = dir.join(format!("{tag}.evdb"));
    logger.finish().save(&trace_path).unwrap();
    (edl_path, trace_path)
}

#[test]
fn lint_command_renders_rustc_style_diagnostics() {
    let (edl, _) = record_lint_scenario("lint-static");
    let (stdout, _, ok) = sgxperf(&["lint", edl.to_str().unwrap()]);
    assert!(ok);
    // Static pass: user_check is a warning, with excerpt and carets.
    assert!(stdout.contains("warning[EDL-W001]"), "{stdout}");
    assert!(stdout.contains("--> "), "{stdout}");
    assert!(stdout.contains("^^^^^^^^^^"), "{stdout}");
    assert!(stdout.contains("= help:"), "{stdout}");
    assert!(stdout.contains("diagnostic(s)"), "{stdout}");
    // No trace: the dead public ecall cannot be detected.
    assert!(!stdout.contains("EDL-W009"), "{stdout}");
}

#[test]
fn lint_trace_cross_check_escalates_and_finds_dead_ecalls() {
    let (edl, trace) = record_lint_scenario("lint-trace");
    let (stdout, _, ok) = sgxperf(&[
        "lint",
        edl.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(ok);
    // The exercised user_check pointer is now an error...
    assert!(stdout.contains("error[EDL-W001]"), "{stdout}");
    assert!(
        stdout.contains("exercises `ecall_step` 16 time(s)"),
        "{stdout}"
    );
    // ...and the never-called public ecall is reported.
    assert!(stdout.contains("note[EDL-W009]"), "{stdout}");
    assert!(stdout.contains("ecall_never"), "{stdout}");
}

#[test]
fn lint_deny_returns_nonzero_exit() {
    let (edl, _) = record_lint_scenario("lint-deny");
    let (_, stderr, ok) = sgxperf(&["lint", edl.to_str().unwrap(), "--deny", "EDL-W001"]);
    assert!(!ok);
    assert!(
        stderr.contains("denied lint(s) present: EDL-W001"),
        "{stderr}"
    );
    // Denying a code that does not fire passes.
    let (_, _, ok) = sgxperf(&["lint", edl.to_str().unwrap(), "--deny", "EDL-W008"]);
    assert!(ok);
    // `--deny all` fails on any diagnostic.
    let (_, _, ok) = sgxperf(&["lint", edl.to_str().unwrap(), "--deny", "all"]);
    assert!(!ok);
}

#[test]
fn report_with_edl_includes_lint_findings() {
    let (edl, trace) = record_lint_scenario("lint-report");
    let (stdout, _, ok) = sgxperf(&[
        "report",
        trace.to_str().unwrap(),
        "--edl",
        edl.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("edl lint findings"), "{stdout}");
    assert!(stdout.contains("EDL-W001"), "{stdout}");
    assert!(stdout.contains("EDL-W009"), "{stdout}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (_, stderr, ok) = sgxperf(&["report", "/nonexistent/trace.evdb"]);
    assert!(!ok);
    assert!(stderr.contains("cannot load"), "{stderr}");
    let trace = record_trace("bad");
    let (_, stderr, ok) = sgxperf(&["hist", trace.to_str().unwrap(), "no_such_call"]);
    assert!(!ok);
    assert!(stderr.contains("no call named"), "{stderr}");
    let (_, stderr, ok) = sgxperf(&["frobnicate", trace.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn unknown_command_prints_usage() {
    let trace = record_trace("usage");
    let (_, stderr, ok) = sgxperf(&["frobnicate", trace.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("sgxperf report"), "{stderr}");
    assert!(stderr.contains("unknown command `frobnicate`"), "{stderr}");
    // The usage text is generated from the subcommand table: every
    // subcommand appears, including the newest.
    for cmd in [
        "report", "lint", "diff", "export", "dot", "hist", "scatter", "info", "races", "fleet",
        "campaign",
    ] {
        assert!(
            stderr.contains(&format!("sgxperf {cmd}")),
            "{cmd}: {stderr}"
        );
    }
}

#[test]
fn usage_synopses_cover_current_flags() {
    let trace = record_trace("usage-flags");
    let (_, stderr, _) = sgxperf(&["frobnicate", trace.to_str().unwrap()]);
    // Drift guard: the generated synopses must mention the flags each
    // subcommand actually accepts.
    for flag in [
        "--faults",
        "--top",
        "--edl",
        "--deny",
        "--threshold",
        "--out",
        "--jobs",
        "--engine",
        "--dry-run",
        "--resume",
    ] {
        assert!(stderr.contains(flag), "{flag} missing from usage: {stderr}");
    }
    // The fault-atom help lists the grammar's real kind names.
    for kind in [
        "aex-storm",
        "evict-storm",
        "paging-slow",
        "ocall-fail",
        "ocall-timeout",
        "worker-stall",
        "ring-full",
        "tcs-exhaust",
        "enclave_lost",
        "epc_poison",
    ] {
        assert!(stderr.contains(kind), "{kind} missing from usage: {stderr}");
    }
}

/// Builds a trace whose sync-event table carries a seeded data race and
/// lock inversion (the CLI cannot depend on the workloads crate, so the
/// rows are written directly).
fn record_racy_trace(tag: &str) -> std::path::PathBuf {
    use sgx_perf::events::SyncEvRow;
    use sim_core::syncev::{SyncOp, EXTERNAL_THREAD};

    let mut trace = sgx_perf::TraceDb::default();
    let mut push = |thread: u64, op: SyncOp, object: Option<u64>, label: &str, time_ns: u64| {
        trace.syncev.insert(SyncEvRow {
            thread,
            op: op.code(),
            object,
            target: None,
            aux: 0,
            label: label.into(),
            time_ns,
        });
    };
    // Unordered writes to one cell + opposite-order lock pairs.
    push(EXTERNAL_THREAD, SyncOp::ThreadSpawn, None, "", 0);
    push(0, SyncOp::SharedWrite, Some(9), "counter", 100);
    push(0, SyncOp::LockAcquire, Some(1), "lock_a", 200);
    push(0, SyncOp::LockAcquire, Some(2), "lock_b", 300);
    push(0, SyncOp::LockRelease, Some(2), "lock_b", 400);
    push(0, SyncOp::LockRelease, Some(1), "lock_a", 500);
    push(1, SyncOp::SharedWrite, Some(9), "counter", 600);
    push(1, SyncOp::LockAcquire, Some(2), "lock_b", 700);
    push(1, SyncOp::LockAcquire, Some(1), "lock_a", 800);
    push(1, SyncOp::LockRelease, Some(1), "lock_a", 900);
    push(1, SyncOp::LockRelease, Some(2), "lock_b", 1000);
    let dir = std::env::temp_dir().join("sgxperf-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.evdb"));
    trace.save(&path).unwrap();
    path
}

#[test]
fn races_gates_on_error_findings_exit_three() {
    let racy = record_racy_trace("races-racy");
    let (stdout, _, code) = sgxperf_code(&["races", racy.to_str().unwrap()]);
    assert_eq!(code, 3, "{stdout}");
    assert!(stdout.contains("error[RACE-E001]"), "{stdout}");
    assert!(stdout.contains("error[RACE-E003]"), "{stdout}");
    assert!(stdout.contains("`counter`"), "{stdout}");
}

#[test]
fn races_on_sync_free_trace_exits_zero_with_note() {
    let trace = record_trace("races-clean");
    let (stdout, stderr, code) = sgxperf_code(&["races", trace.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    assert!(stderr.contains("no sync-event table"), "{stderr}");
}

#[test]
fn races_json_is_machine_readable() {
    let racy = record_racy_trace("races-json");
    let (stdout, _, code) = sgxperf_code(&["races", racy.to_str().unwrap(), "--json"]);
    assert_eq!(code, 3, "{stdout}");
    assert_balanced_json(&stdout);
    assert!(stdout.contains("\"exit_code\":3"), "{stdout}");
    assert!(stdout.contains("RACE-E001"), "{stdout}");
}

#[test]
fn races_usage_errors_exit_one() {
    let racy = record_racy_trace("races-args");
    let (_, stderr, ok) = sgxperf(&["races", racy.to_str().unwrap(), "--frob"]);
    assert!(!ok);
    assert!(stderr.contains("unknown races option"), "{stderr}");
    let (_, stderr, ok) = sgxperf(&["races", "/nonexistent/trace.evdb"]);
    assert!(!ok);
    assert!(stderr.contains("cannot load"), "{stderr}");
}

#[test]
fn report_faults_flag_echoes_canonical_plan() {
    let trace = record_trace("faults-flag");
    // Shorthand spec: defaults filled in, canonical echo on stderr.
    let (stdout, stderr, ok) = sgxperf(&[
        "report",
        trace.to_str().unwrap(),
        "--faults",
        "seed=9;aex-storm@call=3",
    ]);
    assert!(ok);
    assert!(stdout.contains("sgx-perf analysis report"), "{stdout}");
    let canonical = stderr
        .lines()
        .find_map(|l| l.strip_prefix("fault plan: "))
        .unwrap_or_else(|| panic!("no fault plan echo in {stderr}"));
    assert!(canonical.contains("seed=9"), "{canonical}");
    assert!(canonical.contains("aex-storm@call=3:count="), "{canonical}");
    // Round-trip: feeding the canonical form back echoes it unchanged.
    let (_, stderr2, ok) = sgxperf(&["report", trace.to_str().unwrap(), "--faults", canonical]);
    assert!(ok);
    assert!(
        stderr2.contains(&format!("fault plan: {canonical}")),
        "{stderr2}"
    );
    // A malformed spec fails cleanly.
    let (_, stderr, ok) = sgxperf(&[
        "report",
        trace.to_str().unwrap(),
        "--faults",
        "bogus-fault@call=1",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--faults:"), "{stderr}");
}

#[test]
fn diff_of_a_trace_with_itself_is_neutral_exit_zero() {
    let trace = record_trace("diff-self");
    let path = trace.to_str().unwrap();
    let (stdout, stderr, code) = sgxperf_code(&["diff", path, path]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stdout.contains("verdict: NEUTRAL"), "{stdout}");
    assert!(stdout.contains("no change past threshold"), "{stdout}");
    assert!(stdout.contains("ecall_step"), "{stdout}");
    // Paths go to stderr so stdout stays machine-consumable.
    assert!(stderr.contains("baseline:"), "{stderr}");
    let (json, _, code) = sgxperf_code(&["diff", path, path, "--json"]);
    assert_eq!(code, 0);
    assert_balanced_json(&json);
    assert!(json.contains("\"verdict\": \"neutral\""), "{json}");
    assert!(json.contains("\"exit_code\": 0"), "{json}");
}

#[test]
fn diff_usage_errors_exit_one() {
    let trace = record_trace("diff-usage");
    let path = trace.to_str().unwrap();
    let (_, stderr, code) = sgxperf_code(&["diff", path]);
    assert_eq!(code, 1);
    assert!(stderr.contains("exactly two traces"), "{stderr}");
    let (_, stderr, code) = sgxperf_code(&["diff", path, path, "--threshold", "-5"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--threshold"), "{stderr}");
    let (_, stderr, code) = sgxperf_code(&["diff", path, "/nonexistent.evdb"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("cannot load"), "{stderr}");
}

#[test]
fn export_chrome_emits_trace_event_json() {
    let trace = record_trace("export-chrome");
    let (stdout, _, ok) = sgxperf(&["export", trace.to_str().unwrap(), "--format", "chrome"]);
    assert!(ok);
    assert_balanced_json(&stdout);
    assert!(stdout.contains("\"traceEvents\""), "{stdout}");
    assert!(stdout.contains("\"thread_name\""), "{stdout}");
    assert!(stdout.contains("\"name\": \"ecall_step\""), "{stdout}");
    assert!(stdout.contains("\"ph\": \"X\""), "{stdout}");
}

#[test]
fn export_folded_emits_collapsed_stacks() {
    let trace = record_trace("export-folded");
    let (stdout, _, ok) = sgxperf(&["export", trace.to_str().unwrap(), "--format", "folded"]);
    assert!(ok);
    // The nested ocall folds under its parent ecall on the thread lane.
    assert!(
        stdout.lines().any(|l| {
            l.starts_with("thread-") && l.contains("ecall_step;ocall_note") && !l.ends_with(" 0")
        }),
        "{stdout}"
    );
    let (_, stderr, ok) = sgxperf(&["export", trace.to_str().unwrap(), "--format", "svg"]);
    assert!(!ok);
    assert!(stderr.contains("unknown export format"), "{stderr}");
    let (_, stderr, ok) = sgxperf(&["export", trace.to_str().unwrap(), "--json"]);
    assert!(!ok);
    assert!(stderr.contains("--format"), "{stderr}");
}

#[test]
fn hist_and_scatter_accept_json() {
    let trace = record_trace("plot-json");
    let path = trace.to_str().unwrap();
    let (stdout, _, ok) = sgxperf(&["hist", path, "ecall_step", "--json", "--bins", "10"]);
    assert!(ok);
    assert_balanced_json(&stdout);
    assert!(stdout.contains("\"bin_width_ns\""), "{stdout}");
    assert!(stdout.matches(',').count() >= 10, "{stdout}");
    let (stdout, _, ok) = sgxperf(&["scatter", path, "ecall_step", "--json"]);
    assert!(ok);
    assert_balanced_json(&stdout);
    assert!(stdout.starts_with("{\"points\": [["), "{stdout}");
}

#[test]
fn info_lists_sections_with_rows_and_bytes() {
    let trace = record_trace("info-sections");
    let (stdout, _, ok) = sgxperf(&["info", trace.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("payload bytes"), "{stdout}");
    // Every table the trace serialises shows up with its row count.
    for line in ["ecalls", "ocalls", "symbols"] {
        let row = stdout
            .lines()
            .find(|l| l.trim_start().starts_with(line) && l.contains("rows"))
            .unwrap_or_else(|| panic!("no section line for {line} in {stdout}"));
        assert!(row.contains("bytes"), "{row}");
    }
    let ecalls = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("ecalls") && l.contains("rows"))
        .unwrap();
    assert!(ecalls.contains("64 rows"), "{ecalls}");
}

/// Writes a campaign spec to a temp file; returns (spec path, out dir).
fn write_spec(tag: &str, body: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    let dir = std::env::temp_dir().join("sgxperf-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join(format!("{tag}.toml"));
    std::fs::write(&spec, body).unwrap();
    (spec, dir.join(format!("{tag}-out")))
}

const NEUTRAL_SPEC: &str = "[campaign]\nname = \"cli\"\nthreshold = 25\n\
    [matrix]\nworkloads = [\"ecall_storm\"]\nprofiles = [\"unpatched\"]\nseeds = [1, 2]\n";

#[test]
fn campaign_neutral_matrix_exits_zero_and_is_byte_stable() {
    let (spec, out) = write_spec("campaign-neutral", NEUTRAL_SPEC);
    let spec = spec.to_str().unwrap();
    let run =
        |jobs: &str, out: &str| sgxperf_code(&["campaign", spec, "--out", out, "--jobs", jobs]);
    let out_a = out.with_extension("a");
    let out_b = out.with_extension("b");
    let (stdout_a, stderr_a, code) = run("1", out_a.to_str().unwrap());
    assert_eq!(code, 0, "{stdout_a}{stderr_a}");
    let (stdout_b, _, code) = run("4", out_b.to_str().unwrap());
    assert_eq!(code, 0);
    // Byte-stable across worker counts; timing is stderr-only.
    assert_eq!(stdout_a, stdout_b);
    assert!(stdout_a.contains("campaign \"cli\""), "{stdout_a}");
    assert!(stdout_a.contains("baseline"), "{stdout_a}");
    assert!(stderr_a.contains("2 cell(s)"), "{stderr_a}");
    // One archived trace per cell, plus both summary files.
    for file in [
        "ecall_storm-unpatched-none-off-s1.evdb",
        "ecall_storm-unpatched-none-off-s2.evdb",
        "summary.txt",
        "summary.json",
        "manifest.json",
    ] {
        assert!(out_a.join(file).exists(), "{file} missing");
    }
    assert_eq!(
        std::fs::read_to_string(out_a.join("summary.txt")).unwrap(),
        stdout_a
    );
}

#[test]
fn campaign_json_is_machine_readable() {
    let (spec, out) = write_spec("campaign-json", NEUTRAL_SPEC);
    let (stdout, _, code) = sgxperf_code(&[
        "campaign",
        spec.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert_balanced_json(&stdout);
    assert!(stdout.contains("\"exit_code\": 0"), "{stdout}");
    assert!(stdout.contains("\"verdict\": \"baseline\""), "{stdout}");
}

#[test]
fn campaign_regressing_plan_trips_gate_exit_three() {
    let (spec, out) = write_spec(
        "campaign-gate",
        "[campaign]\nname = \"gate\"\nthreshold = 25\n\
         [matrix]\nworkloads = [\"io_fsync_loop\"]\nprofiles = [\"unpatched\"]\nseeds = [1]\n\
         [faults]\nnone = \"\"\n\
         storm = \"seed=3;ocall-timeout@call=2:delay=60us,times=3;aex-storm@call=12:count=6\"\n",
    );
    let (stdout, _, code) = sgxperf_code(&[
        "campaign",
        spec.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, 3, "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(
        stdout.contains("1 regressed, 0 broken, 0 flaky cell(s) -> exit 3"),
        "{stdout}"
    );
}

#[test]
fn campaign_faulty_cells_quarantine_and_exit_four() {
    let (spec, out) = write_spec(
        "campaign-faulty",
        "[campaign]\nname = \"faulty\"\nthreshold = 25\n\
         [matrix]\nworkloads = [\"ecall_storm\", \"panicking\", \"flaky\"]\n\
         profiles = [\"unpatched\"]\nseeds = [1]\n\
         [robustness]\ncell_deadline = \"30s\"\nretries = 1\n",
    );
    let (stdout, _, code) = sgxperf_code(&[
        "campaign",
        spec.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    // The poisoned cell is quarantined, its siblings complete, and the
    // incomplete exit code (4) wins over everything else.
    assert_eq!(code, 4, "{stdout}");
    assert!(stdout.contains("quarantine:"), "{stdout}");
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains("passed on attempt 2"), "{stdout}");
    assert!(
        stdout.contains("0 regressed, 1 broken, 1 flaky cell(s) -> exit 4"),
        "{stdout}"
    );
    // The healthy cells' traces still landed.
    assert!(out.join("ecall_storm-unpatched-none-off-s1.evdb").exists());
    assert!(out.join("flaky-unpatched-none-off-s1.evdb").exists());
}

#[test]
fn campaign_resume_completes_a_partial_archive_byte_identically() {
    let (spec, out) = write_spec("campaign-resume", NEUTRAL_SPEC);
    let spec = spec.to_str().unwrap();
    let full = out.with_extension("full");
    let partial = out.with_extension("partial");
    let (stdout_full, _, code) = sgxperf_code(&["campaign", spec, "--out", full.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout_full}");
    // Fabricate an interrupted run: the archive minus one trace.
    std::fs::create_dir_all(&partial).unwrap();
    for entry in std::fs::read_dir(&full).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), partial.join(entry.file_name())).unwrap();
    }
    std::fs::remove_file(partial.join("ecall_storm-unpatched-none-off-s2.evdb")).unwrap();
    let (stdout_resumed, stderr, code) = sgxperf_code(&[
        "campaign",
        spec,
        "--out",
        partial.to_str().unwrap(),
        "--resume",
    ]);
    assert_eq!(code, 0, "{stdout_resumed}{stderr}");
    assert_eq!(stdout_resumed, stdout_full, "resume must be byte-identical");
    for entry in std::fs::read_dir(&full).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        assert_eq!(
            std::fs::read(entry.path()).unwrap(),
            std::fs::read(partial.join(&name)).unwrap(),
            "{name:?} differs after resume"
        );
    }
}

#[test]
fn campaign_dry_run_echoes_canonical_spec_without_executing() {
    let (spec, out) = write_spec("campaign-dry", NEUTRAL_SPEC);
    let (stdout, stderr, code) = sgxperf_code(&[
        "campaign",
        spec.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--dry-run",
    ]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    // The canonical spec (defaults explicit) plus the expanded matrix.
    assert!(stdout.contains("[campaign]"), "{stdout}");
    assert!(stdout.contains("threshold = 25"), "{stdout}");
    assert!(stdout.contains("[baseline]"), "{stdout}");
    assert!(
        stdout.contains("ecall_storm-unpatched-none-off-s2.evdb"),
        "{stdout}"
    );
    assert!(stderr.contains("dry run"), "{stderr}");
    assert!(!out.exists(), "dry run must not write the archive");
}

#[test]
fn campaign_usage_errors_exit_one() {
    let (spec, _) = write_spec("campaign-args", NEUTRAL_SPEC);
    let (_, stderr, code) = sgxperf_code(&["campaign", spec.to_str().unwrap(), "--frob"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown campaign option"), "{stderr}");
    let (_, stderr, code) = sgxperf_code(&["campaign", "/nonexistent/spec.toml", "--dry-run"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("cannot read"), "{stderr}");
    // Spec errors carry the line number.
    let (bad, _) = write_spec("campaign-bad", "[campaign]\nname = \"x\"\nfrobnicate = 1\n");
    let (_, stderr, code) = sgxperf_code(&["campaign", bad.to_str().unwrap(), "--dry-run"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("bad campaign spec: line 3"), "{stderr}");
    // Unknown workloads are a resolution error, also with the file named.
    let (bad, _) = write_spec(
        "campaign-badwl",
        "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"frobnicate\"]\n\
         profiles = [\"unpatched\"]\nseeds = [1]\n",
    );
    let (_, stderr, code) = sgxperf_code(&["campaign", bad.to_str().unwrap(), "--dry-run"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown workload `frobnicate`"), "{stderr}");
}

#[test]
fn json_report_carries_fault_counters() {
    let trace = record_trace("faults-json");
    let (stdout, _, ok) = sgxperf(&["report", trace.to_str().unwrap(), "--json"]);
    assert!(ok);
    // Fault-free trace: counters present and zero.
    assert!(stdout.contains("\"faults_injected\": 0"), "{stdout}");
    assert!(stdout.contains("\"faults_recovered\": 0"), "{stdout}");
    assert!(stdout.contains("\"faults_gave_up\": 0"), "{stdout}");
}
