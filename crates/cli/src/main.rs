//! The sgx-perf command-line analyser: consumes a trace file recorded by
//! the event logger and produces reports, call graphs and plot data —
//! the offline half of the tool collection (§4.3).
//!
//! ```text
//! sgxperf report   <trace.evdb> [--profile unpatched|spectre|l1tf] [--edl <file.edl>] [--faults <spec>] [--json]
//! sgxperf lint     <file.edl> [--trace <trace.evdb>] [--deny <code,...>] [--max-public N] [--large-copy BYTES]
//! sgxperf diff     <a.evdb> <b.evdb> [--threshold PCT] [--min-count N] [--json]
//! sgxperf export   <trace.evdb> --format chrome|folded [--profile ...] [-o <out>]
//! sgxperf dot      <trace.evdb> [-o <out.dot>]
//! sgxperf hist     <trace.evdb> <call-name> [--bins N] [--json]
//! sgxperf scatter  <trace.evdb> <call-name> [--json]
//! sgxperf info     <trace.evdb>
//! sgxperf races    <trace.evdb> [--json]
//! sgxperf fleet    <trace.evdb> [--top N] [--json]
//! sgxperf campaign <spec.toml> [--out DIR] [--jobs N] [--engine fast|legacy] [--json] [--dry-run] [--resume]
//! ```
//!
//! `lint` runs the static interface analyzer (EDL-W001...) and renders
//! rustc-style diagnostics. With `--trace`, findings are cross-checked
//! against the recorded events: exercised `user_check` pointers escalate
//! to errors and never-called public ecalls are reported (EDL-W009).
//! `--deny` makes the listed codes (or `all`) fail the run with exit
//! code 1 — the CI-gate mode.
//!
//! `diff` compares a candidate trace against a baseline and exits 0 when
//! no metric regressed past the threshold (default 10%) or 3 on
//! regression — the perf-gate mode. `export` converts a trace to
//! `chrome://tracing` JSON or collapsed flamegraph stacks.
//!
//! `races` replays the trace's sync-event table (recorded with
//! `track_syncev`) through happens-before, lockset and lock-order
//! analyses; exit 3 on error-severity findings (data races, lock-order
//! cycles), 0 otherwise — the race-gate mode.
//!
//! `campaign` is the only subcommand that *records* instead of analysing:
//! it parses a declarative spec, expands the scenario matrix
//! {workload x profile x fault plan x switchless x seed}, executes every
//! cell in parallel on the simulator under the spec's `[robustness]`
//! supervision (per-cell panic isolation, event budgets, wall-clock
//! deadlines, retries with a flaky/broken quarantine ledger), archives
//! one trace per cell plus a checksummed `manifest.json` (all writes
//! atomic), and verdicts each cell against its declared baseline through
//! the diff engine — exit 3 iff any cell regressed, exit 4 when the
//! matrix is incomplete (broken or unverdictable cells; beats 3).
//! `--resume` salvages a crashed run's archive and re-runs only missing
//! or corrupt cells. The summary (stdout) is byte-stable: times and
//! engine/worker info go to stderr only.

use std::path::PathBuf;
use std::process::ExitCode;

use sgx_edl::lint::LintConfig;
use sgx_perf::analysis::diff::{DiffConfig, TraceDiff};
use sgx_perf::analysis::lint::lint_interface;
use sgx_perf::analysis::races;
use sgx_perf::analysis::stats::{scatter, scatter_csv, scatter_json, Histogram};
use sgx_perf::{export, Analyzer, FleetReport, TraceDb};
use sim_core::campaign::CampaignSpec;
use sim_core::fault::FaultPlan;
use sim_core::HwProfile;
use sim_threads::Engine;
use workloads::campaign::matrix::{self, MatrixPlan};

/// Every subcommand: (name, argument synopsis, one-line summary). The
/// usage text is generated from this table, so an unknown-subcommand
/// error always lists the complete, current set.
const SUBCOMMANDS: &[(&str, &str, &str)] = &[
    (
        "report",
        "<trace.evdb> [--profile unpatched|spectre|l1tf] [--edl <file.edl>] [--faults <spec>] [--json]",
        "statistics, detections and recommendations",
    ),
    (
        "lint",
        "<file.edl> [--trace <trace.evdb>] [--deny <code,...>] [--max-public N] [--large-copy BYTES]",
        "static interface analysis (exit 1 on denied codes)",
    ),
    (
        "diff",
        "<a.evdb> <b.evdb> [--threshold PCT] [--min-count N] [--json]",
        "A/B regression gate (exit 3 on regression)",
    ),
    (
        "export",
        "<trace.evdb> --format chrome|folded [--profile <p>] [-o <out>]",
        "chrome://tracing JSON or flamegraph stacks",
    ),
    ("dot", "<trace.evdb> [-o <out.dot>]", "call graph in dot format"),
    (
        "hist",
        "<trace.evdb> <call-name> [--bins N] [--json]",
        "per-call duration histogram",
    ),
    (
        "scatter",
        "<trace.evdb> <call-name> [--json]",
        "per-execution duration series",
    ),
    ("info", "<trace.evdb>", "table sizes and physical layout"),
    (
        "races",
        "<trace.evdb> [--json]",
        "race & deadlock analysis (exit 3 on findings)",
    ),
    (
        "fleet",
        "<trace.evdb> [--top N] [--json]",
        "per-slot and aggregate fleet-run statistics",
    ),
    (
        "campaign",
        "<spec.toml> [--out DIR] [--jobs N] [--engine fast|legacy] [--json] [--dry-run] [--resume]",
        "run a supervised scenario matrix (exit 3 on regression, 4 when incomplete)",
    ),
];

fn print_usage() {
    let mut text = String::from("usage:\n");
    for (name, synopsis, _) in SUBCOMMANDS {
        text.push_str(&format!("  sgxperf {name:<8} {synopsis}\n"));
    }
    text.push_str("\ncommands:\n");
    for (name, _, summary) in SUBCOMMANDS {
        text.push_str(&format!("  {name:<8} {summary}\n"));
    }
    text.push_str(
        "\nfault specs (--faults, campaign [faults] values): `;`-separated atoms of\nkind@trigger[:params], where trigger is call=N or t=<duration>, plus an\noptional seed=N clause:\n  aex-storm@call=N|t=D[:count=K]               burst of K AEXs\n  evict-storm@call=N|t=D                       evict all resident EPC pages\n  paging-slow@t=D[:factor=K,dur=D2]            multiply paging costs by K for D2\n  ocall-fail@call=N|t=D[:times=K]              fail the next K ocalls (retried)\n  ocall-timeout@call=N|t=D[:delay=D2,times=K]  stall the next K ocalls by D2\n  worker-stall@call=N|t=D[:delay=D2]           stall switchless workers by D2\n  ring-full@call=N|t=D[:calls=K]               report full switchless rings K times\n  tcs-exhaust@call=N|t=D[:times=K]             report all TCSs busy K times\n  enclave_lost@call=N|t=D                      destroy EPC contents (SGX_ERROR_ENCLAVE_LOST)\n  epc_poison@call=N|t=D                        poison: enclave is lost at its next EENTER\nexample: --faults 'enclave_lost@call=3;ocall-timeout@t=2ms:delay=50us;seed=7'",
    );
    eprintln!("{text}");
}

fn usage() -> ExitCode {
    print_usage();
    ExitCode::from(2)
}

fn parse_profile(s: &str) -> Option<HwProfile> {
    HwProfile::parse(s)
}

fn find_call(analyzer: &Analyzer<'_>, name: &str) -> Option<sgx_perf::CallRef> {
    let report = analyzer.analyze();
    report
        .call_names
        .iter()
        .position(|n| n == name)
        .map(|i| report.call_stats[i].0)
}

/// `sgxperf lint` — the EDL file replaces the trace as the primary input,
/// so it is dispatched before the shared trace-loading path.
///
/// Exit status: 1 when any produced diagnostic's code is in the `--deny`
/// set (`--deny all` denies every code), 0 otherwise.
fn run_lint(rest: &[String]) -> Result<ExitCode, String> {
    let (path, opts) = rest.split_first().ok_or("missing EDL file")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let file = sgx_edl::parse_file(&source).map_err(|e| format!("{path}: {e}"))?;

    let mut config = LintConfig::default();
    let mut trace: Option<TraceDb> = None;
    let mut deny: Vec<String> = Vec::new();
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file")?;
                trace = Some(TraceDb::load(v).map_err(|e| format!("cannot load {v}: {e}"))?);
            }
            "--deny" => {
                let v = it.next().ok_or("--deny needs a code list")?;
                deny.extend(v.split(',').map(|c| c.trim().to_string()));
            }
            "--max-public" => {
                config.max_public_ecalls = it
                    .next()
                    .ok_or("--max-public needs a number")?
                    .parse()
                    .map_err(|e| format!("--max-public: {e}"))?;
            }
            "--large-copy" => {
                config.large_copy_bytes = it
                    .next()
                    .ok_or("--large-copy needs a byte count")?
                    .parse()
                    .map_err(|e| format!("--large-copy: {e}"))?;
            }
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }

    let diags = lint_interface(&file, &config, trace.as_ref());
    for d in &diags {
        println!("{}", d.render(&source, path));
    }
    let denied: Vec<&str> = diags
        .iter()
        .map(|d| d.code)
        .filter(|c| deny.iter().any(|d| d == c || d == "all"))
        .collect();
    let errors = diags
        .iter()
        .filter(|d| d.severity == sgx_edl::Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == sgx_edl::Severity::Warning)
        .count();
    println!(
        "{path}: {} diagnostic(s) ({errors} error(s), {warnings} warning(s))",
        diags.len()
    );
    if denied.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("sgxperf: denied lint(s) present: {}", denied.join(", "));
        Ok(ExitCode::FAILURE)
    }
}

/// `sgxperf diff` — needs *two* traces, so it is dispatched before the
/// shared single-trace loading path.
///
/// Exit status: 0 when nothing regressed past the threshold (including a
/// net improvement), 3 on regression, 1 on bad input.
fn run_diff(rest: &[String]) -> Result<ExitCode, String> {
    let mut config = DiffConfig::default();
    let mut json = false;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a percentage")?;
                let pct: f64 = v.parse().map_err(|e| format!("--threshold: {e}"))?;
                if !pct.is_finite() || pct <= 0.0 {
                    return Err(format!(
                        "--threshold must be a positive percentage, got {v}"
                    ));
                }
                config.threshold = pct / 100.0;
            }
            "--min-count" => {
                config.min_count = it
                    .next()
                    .ok_or("--min-count needs a number")?
                    .parse()
                    .map_err(|e| format!("--min-count: {e}"))?;
            }
            "--json" => json = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown diff option `{other}`"))
            }
            _ => paths.push(opt),
        }
    }
    let [a_path, b_path] = paths[..] else {
        return Err(format!(
            "diff needs exactly two traces (baseline, candidate), got {}",
            paths.len()
        ));
    };
    let a = TraceDb::load(a_path).map_err(|e| format!("cannot load {a_path}: {e}"))?;
    let b = TraceDb::load(b_path).map_err(|e| format!("cannot load {b_path}: {e}"))?;
    let diff = TraceDiff::compute(&a, &b, config);
    if json {
        print!("{}", diff.to_json());
    } else {
        eprintln!("baseline:  {a_path}\ncandidate: {b_path}\n");
        print!("{}", diff.render());
    }
    Ok(ExitCode::from(diff.exit_code()))
}

/// `sgxperf races` — the race & deadlock gate.
///
/// Exit status: 3 when any error-severity finding is present (data races,
/// lock-order cycles), 0 otherwise — warnings (lockset suspicions, locks
/// held across ocalls) report but do not gate.
fn run_races(rest: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    let mut paths: Vec<&String> = Vec::new();
    for opt in rest {
        match opt.as_str() {
            "--json" => json = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown races option `{other}`"))
            }
            _ => paths.push(opt),
        }
    }
    let [path] = paths[..] else {
        return Err(format!(
            "races needs exactly one trace, got {}",
            paths.len()
        ));
    };
    let trace = TraceDb::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    if trace.syncev.is_empty() {
        eprintln!(
            "sgxperf: note: {path} has no sync-event table — record with \
             LoggerConfig::with_syncev() to enable the race analyses"
        );
    }
    let report = races::analyze(&trace);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(ExitCode::from(report.exit_code()))
}

/// `sgxperf fleet` — per-slot and aggregate statistics of a fleet run.
///
/// Exit status: 0 always (reporting, not gating); 1 on bad input.
fn run_fleet(rest: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    let mut top = 20usize;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--json" => json = true,
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a number")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown fleet option `{other}`"))
            }
            _ => paths.push(opt),
        }
    }
    let [path] = paths[..] else {
        return Err(format!(
            "fleet needs exactly one trace, got {}",
            paths.len()
        ));
    };
    let trace = TraceDb::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let report = FleetReport::from_trace(&trace);
    if report.is_empty() {
        eprintln!("sgxperf: note: {path} has no fleet table — record with a fleet run");
    }
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render(top));
    }
    Ok(ExitCode::SUCCESS)
}

/// `sgxperf campaign` — the declarative scenario-matrix runner. The only
/// subcommand whose input is a spec file rather than a trace: it records
/// one trace per matrix cell (in parallel), archives them under `--out`
/// (default `target/campaign/<name>`) and gates on the per-cell diff
/// verdicts.
///
/// stdout carries only the byte-stable summary (text table, or JSON with
/// `--json`); wall-clock timing, worker count and engine label go to
/// stderr so two runs of the same spec diff clean.
///
/// Cells run supervised per the spec's `[robustness]` section: panics,
/// budget/deadline timeouts and archive I/O errors fail only their cell,
/// retried up to `retries` times and quarantined in the summary ledger.
/// `--resume` revalidates the archive's `manifest.json` from an
/// interrupted run and re-runs only missing or corrupt cells.
///
/// Exit status: 0 when every cell completed and none regressed past the
/// spec's threshold against its declared baseline, 3 on regression, 4
/// when the matrix is incomplete (broken or unverdictable cells — beats
/// 3), 1 on bad input.
fn run_campaign(rest: &[String]) -> Result<ExitCode, String> {
    let mut out: Option<PathBuf> = None;
    let mut jobs = 0usize;
    let mut engine: Option<Engine> = None;
    let mut json = false;
    let mut dry_run = false;
    let mut resume = false;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a directory")?)),
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a number")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs fast|legacy")?;
                engine = Some(Engine::parse(v).ok_or_else(|| format!("unknown engine `{v}`"))?);
            }
            "--json" => json = true,
            "--dry-run" => dry_run = true,
            "--resume" => resume = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown campaign option `{other}`"))
            }
            _ => paths.push(opt),
        }
    }
    let [spec_path] = paths[..] else {
        return Err(format!(
            "campaign needs exactly one spec file, got {}",
            paths.len()
        ));
    };
    let source =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = CampaignSpec::parse(&source).map_err(|e| format!("{spec_path}: {e}"))?;
    let plan = MatrixPlan::from_spec(spec).map_err(|e| format!("{spec_path}: {e}"))?;

    if dry_run {
        // Echo the canonical spec (the parse/Display fixpoint) and the
        // expanded matrix without running anything.
        print!("{}", plan.spec);
        println!();
        for coord in plan.cells() {
            println!("{:>5}  {}", coord.index, plan.file_name(&coord));
        }
        eprintln!(
            "sgxperf: dry run: {} cell(s), nothing executed",
            plan.spec.cell_count()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let engine = engine.unwrap_or_else(Engine::current);
    let out_dir = out.unwrap_or_else(|| PathBuf::from("target/campaign").join(&plan.spec.name));
    let started = std::time::Instant::now();
    let run = matrix::run(&plan, engine, jobs, Some(&out_dir), resume)?;
    if json {
        print!("{}", run.to_json());
    } else {
        print!("{}", run.render());
    }
    eprintln!(
        "sgxperf: {} cell(s) on the {} engine in {:?} -> {}",
        run.cells.len(),
        engine.label(),
        started.elapsed(),
        out_dir.display(),
    );
    Ok(ExitCode::from(run.exit_code()))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args.split_first().ok_or("missing command")?;
    if cmd == "lint" {
        return run_lint(rest);
    }
    if cmd == "diff" {
        return run_diff(rest);
    }
    if cmd == "races" {
        return run_races(rest);
    }
    if cmd == "fleet" {
        return run_fleet(rest);
    }
    if cmd == "campaign" {
        return run_campaign(rest);
    }
    let (path, opts) = rest.split_first().ok_or("missing trace file")?;
    let trace = TraceDb::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;

    let mut profile = HwProfile::Unpatched;
    let mut edl: Option<sgx_edl::InterfaceSpec> = None;
    let mut edl_lint: Vec<sgx_edl::Diagnostic> = Vec::new();
    let mut out: Option<String> = None;
    let mut bins = 100usize;
    let mut json = false;
    let mut format: Option<String> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut positional = Vec::new();
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--profile" => {
                let v = it.next().ok_or("--profile needs a value")?;
                profile = parse_profile(v).ok_or_else(|| format!("unknown profile `{v}`"))?;
            }
            "--edl" => {
                let v = it.next().ok_or("--edl needs a file")?;
                let src =
                    std::fs::read_to_string(v).map_err(|e| format!("cannot read {v}: {e}"))?;
                let file = sgx_edl::parse_file(&src).map_err(|e| format!("{v}: {e}"))?;
                edl_lint = lint_interface(&file, &LintConfig::default(), Some(&trace));
                edl = Some(
                    sgx_edl::spec::InterfaceSpec::from_ast(&file)
                        .map_err(|e| format!("{v}: {e}"))?,
                );
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a fault spec")?;
                faults = Some(FaultPlan::parse(v).map_err(|e| format!("--faults: {e}"))?);
            }
            "-o" => out = Some(it.next().ok_or("-o needs a file")?.clone()),
            "--json" => json = true,
            "--format" => format = Some(it.next().ok_or("--format needs a value")?.clone()),
            "--bins" => {
                bins = it
                    .next()
                    .ok_or("--bins needs a number")?
                    .parse()
                    .map_err(|e| format!("--bins: {e}"))?;
            }
            other => positional.push(other.to_string()),
        }
    }

    let mut analyzer = Analyzer::new(&trace, profile.cost_model());
    if let Some(spec) = edl {
        analyzer = analyzer.with_edl(spec).with_lint(edl_lint);
    }

    match cmd.as_str() {
        "report" => {
            // Echo the canonical form of the fault plan the trace was (or
            // is to be) recorded under — to stderr, so `--json` stdout
            // stays valid JSON. Parsing the echo back yields the same
            // plan: `Display` is the grammar's fixpoint.
            if let Some(plan) = &faults {
                eprintln!("fault plan: {plan}");
            }
            let report = analyzer.analyze();
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
        }
        "dot" => {
            let dot = analyzer.call_graph().to_dot();
            match out {
                Some(path) => {
                    std::fs::write(&path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                None => print!("{dot}"),
            }
        }
        "export" => {
            let format = format.ok_or("export needs --format chrome|folded")?;
            let rendered = match format.as_str() {
                "chrome" => export::chrome_trace(&trace, analyzer.cost_model()),
                "folded" => export::folded_stacks(&trace, analyzer.cost_model()),
                other => return Err(format!("unknown export format `{other}`")),
            };
            match out {
                Some(path) => {
                    std::fs::write(&path, rendered)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                None => print!("{rendered}"),
            }
        }
        "hist" => {
            let name = positional.first().ok_or("hist needs a call name")?;
            let call =
                find_call(&analyzer, name).ok_or_else(|| format!("no call named `{name}`"))?;
            let instances = analyzer.instances();
            let hist = Histogram::of_call(&instances, call, bins)
                .ok_or_else(|| format!("`{name}` has no recorded executions"))?;
            if json {
                print!("{}", hist.to_json());
            } else {
                println!("{}", hist.render_ascii(24, 48));
            }
            if let Some(path) = out {
                std::fs::write(&path, hist.to_csv())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
        }
        "scatter" => {
            let name = positional.first().ok_or("scatter needs a call name")?;
            let call =
                find_call(&analyzer, name).ok_or_else(|| format!("no call named `{name}`"))?;
            let instances = analyzer.instances();
            let points = scatter(&instances, call);
            if json {
                print!("{}", scatter_json(&points));
            } else {
                print!("{}", scatter_csv(&points));
            }
        }
        "info" => {
            println!(
                "ecalls: {}  ocalls: {}  aex: {}  paging: {}  sync: {}  enclaves: {}  symbols: {}",
                trace.ecalls.len(),
                trace.ocalls.len(),
                trace.aex.len(),
                trace.paging.len(),
                trace.sync.len(),
                trace.enclaves.len(),
                trace.symbols.len()
            );
            // Physical layout, via the store's enumeration API — row counts
            // and byte sizes per section without decoding any records.
            let store =
                eventdb::Store::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
            println!("sections ({} payload bytes):", store.payload_bytes());
            for info in store.sections() {
                let info = info.map_err(|e| format!("{path}: {e}"))?;
                println!(
                    "  {:<12} {:>8} rows {:>10} bytes",
                    info.tag, info.rows, info.bytes
                );
            }
        }
        other => {
            print_usage();
            return Err(format!("unknown command `{other}`"));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    if std::env::args().len() < 3 {
        return usage();
    }
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sgxperf: {msg}");
            ExitCode::FAILURE
        }
    }
}
