//! Simulated Intel SGX hardware and kernel driver.
//!
//! This crate is the lowest substrate of the sgx-perf reproduction: it
//! models exactly the pieces of SGX whose *observable events* sgx-perf
//! instruments —
//!
//! * **enclave memory layout** ([`layout`]): metadata, TCS, SSA, code, data,
//!   heap, stack, guard and padding pages, with the enclave size rounded up
//!   to a power of two as required by the measurement (§4.2),
//! * **the EPC** ([`epc`]): 93 MiB of usable protected memory shared by all
//!   enclaves, with FIFO or LRU eviction and per-page `EWB`/`ELDU` costs,
//! * **the kernel driver** ([`Machine`] hooks): paging decisions happen "in
//!   the kernel"; a hook registry stands in for the kprobes sgx-perf
//!   attaches to the driver's page-in/page-out functions (§4.1.5),
//! * **asynchronous enclave exits** ([`machine`]): timer interrupts hitting
//!   in-enclave execution cause AEXs delivered through a patchable AEP
//!   observer (§4.1.4),
//! * **MMU page permissions** ([`page`]): strippable at runtime with access
//!   faults delivered to a registered handler — the mechanism behind the
//!   working-set estimator (§4.2).
//!
//! Everything above this crate (URTS/TRTS dispatch, EDL, the logger) lives
//! in `sgx-sdk` and `sgx-perf`.
//!
//! # Examples
//!
//! ```
//! use sgx_sim::{EnclaveConfig, Machine};
//! use sim_core::{Clock, HwProfile};
//!
//! let machine = Machine::new(Clock::new(), HwProfile::Unpatched);
//! let eid = machine.create_enclave(&EnclaveConfig::default())?;
//! let info = machine.enclave_info(eid)?;
//! assert!(info.total_pages.is_power_of_two());
//! # Ok::<(), sgx_sim::SimError>(())
//! ```

pub mod epc;
pub mod events;
pub mod layout;
pub mod machine;
pub mod page;

pub use epc::EvictionPolicy;
pub use events::{AexCause, AexEvent, DriverEvent, MmuFault, PagingDirection};
pub use layout::{EnclaveConfig, EnclaveLayout, PageKind, PAGE_SIZE};
pub use machine::{
    AccessKind, EnclaveId, EnclaveInfo, Machine, MachineParams, SgxVersion, SimError, ThreadToken,
    TouchStats,
};
pub use page::Perms;
