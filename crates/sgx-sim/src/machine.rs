//! The simulated SGX machine: enclaves, EPC, AEX injection, MMU faults.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use sim_core::fault::{
    FaultAction, FaultEvent, FaultInjector, FaultKind, FaultObserver, FaultPlan,
};
use sim_core::sync::Mutex;
use sim_core::{
    Clock, CostModel, HwProfile, LifecycleEvent, LifecycleObserver, LifecycleStage, Nanos, SyncBus,
};

use crate::epc::{Epc, EvictionPolicy, DEFAULT_EPC_PAGES};
use crate::events::{AexCause, AexEvent, DriverEvent, MmuFault, PagingDirection};
use crate::layout::{EnclaveConfig, EnclaveLayout, PageKind, PAGE_SIZE};
use crate::page::{PageState, Perms};

/// Identifier of an enclave on a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnclaveId(pub u32);

impl fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "enclave#{}", self.0)
    }
}

/// Identifier of the logical thread currently executing; assigned by the
/// runtime layer (`sgx-sdk`) from `sim-threads` ids, or `ThreadToken::MAIN`
/// for single-threaded workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadToken(pub usize);

impl ThreadToken {
    /// The implicit main thread of single-threaded workloads.
    pub const MAIN: ThreadToken = ThreadToken(0);
}

impl fmt::Display for ThreadToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Kind of memory access for [`Machine::touch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl AccessKind {
    fn required_perms(self) -> Perms {
        match self {
            AccessKind::Read => Perms::READ,
            AccessKind::Write => Perms::WRITE,
            AccessKind::Execute => Perms::EXEC,
        }
    }
}

/// Errors returned by [`Machine`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The operation needs SGX v2 (`EAUG`) but the machine is v1.
    RequiresSgxV2,
    /// A dynamic-memory request exceeded the enclave's padding reserve.
    OutOfEnclaveSpace {
        /// Offending enclave.
        enclave: EnclaveId,
        /// Pages requested.
        requested: usize,
        /// Padding pages still available.
        available: usize,
    },
    /// The enclave id does not exist (or was destroyed).
    UnknownEnclave(EnclaveId),
    /// A page index was outside the enclave.
    PageOutOfRange {
        /// Offending enclave.
        enclave: EnclaveId,
        /// The out-of-range page index.
        page: usize,
        /// The enclave's size in pages.
        total: usize,
    },
    /// An access hit a page that is never accessible (guard/padding/
    /// metadata) — a simulated segmentation fault.
    Segfault {
        /// Offending enclave.
        enclave: EnclaveId,
        /// The faulting page index.
        page: usize,
        /// The page's kind.
        kind: PageKind,
    },
    /// Permissions were stripped but no MMU fault handler is installed.
    UnhandledMmuFault {
        /// Offending enclave.
        enclave: EnclaveId,
        /// The faulting page index.
        page: usize,
    },
    /// The enclave was *lost*: its EPC contents were destroyed by a power
    /// transition or machine check. The id stays registered (so the error
    /// is distinguishable from [`SimError::UnknownEnclave`]) but every
    /// EENTER/ERESUME fails until a supervisor rebuilds it.
    EnclaveLost(EnclaveId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RequiresSgxV2 => {
                write!(f, "dynamic enclave memory (EAUG) requires SGX v2")
            }
            SimError::OutOfEnclaveSpace {
                enclave,
                requested,
                available,
            } => write!(
                f,
                "{enclave} cannot grow by {requested} page(s); only {available} padding page(s) left"
            ),
            SimError::UnknownEnclave(eid) => write!(f, "unknown or destroyed {eid}"),
            SimError::PageOutOfRange {
                enclave,
                page,
                total,
            } => write!(f, "page {page} out of range for {enclave} ({total} pages)"),
            SimError::Segfault {
                enclave,
                page,
                kind,
            } => write!(
                f,
                "segmentation fault: access to {kind:?} page {page} of {enclave}"
            ),
            SimError::UnhandledMmuFault { enclave, page } => write!(
                f,
                "access fault on page {page} of {enclave} with no fault handler installed"
            ),
            SimError::EnclaveLost(eid) => write!(
                f,
                "{eid} lost: EPC contents destroyed by power transition or machine check"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Summary of one [`Machine::touch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TouchStats {
    /// MMU access faults taken (pages whose permissions were stripped).
    pub mmu_faults: usize,
    /// EPC page faults taken (pages that had to be loaded back).
    pub page_faults: usize,
    /// Pages evicted to make room.
    pub evictions: usize,
}

/// Static information about an enclave.
#[derive(Debug, Clone)]
pub struct EnclaveInfo {
    /// The enclave id.
    pub id: EnclaveId,
    /// Base virtual address.
    pub base_vaddr: u64,
    /// Total pages (power of two).
    pub total_pages: usize,
    /// Pages that are legitimately accessible.
    pub accessible_pages: usize,
    /// Pages currently resident in the EPC.
    pub resident_pages: usize,
    /// Number of TCSs.
    pub tcs_count: usize,
    /// The enclave measurement.
    pub measurement: u64,
    /// Whether this is a debug enclave.
    pub debug: bool,
}

/// Which SGX architecture revision the machine implements.
///
/// The paper targets SGX v1 but discusses two v2 capabilities: recording
/// the AEX exit type so the logger can attribute exits (§4.1.4), and
/// dynamic enclave memory (`EAUG`) so enclaves can start small and grow
/// on demand (§2.3.3). Both are implemented behind this switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SgxVersion {
    /// SGX v1: fixed enclave memory, opaque AEX causes.
    #[default]
    V1,
    /// SGX v2: `EAUG` dynamic memory; AEX causes readable from debug
    /// enclaves.
    V2,
}

/// Tunable costs that belong to the machine rather than the CPU profile.
#[derive(Debug, Clone)]
pub struct MachineParams {
    /// EPC capacity in pages (default: 93 MiB usable).
    pub epc_pages: usize,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Cost of `EADD`+`EEXTEND` per page at enclave creation.
    pub eadd_page: Nanos,
    /// Cost of `EINIT`.
    pub einit: Nanos,
    /// Kernel-side cost of delivering one MMU access fault to the handler.
    pub mmu_fault_delivery: Nanos,
    /// SGX architecture revision.
    pub sgx_version: SgxVersion,
    /// Cost of `EAUG`+`EACCEPT` per dynamically added page (v2 only).
    pub eaug_page: Nanos,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            epc_pages: DEFAULT_EPC_PAGES,
            eviction: EvictionPolicy::Fifo,
            eadd_page: Nanos::from_nanos(1_200),
            einit: Nanos::from_micros(50),
            mmu_fault_delivery: Nanos::from_micros(2),
            sgx_version: SgxVersion::V1,
            eaug_page: Nanos::from_micros(2),
        }
    }
}

struct EnclaveState {
    layout: EnclaveLayout,
    pages: Vec<PageState>,
    base: u64,
    debug: bool,
    /// The enclave's EPC contents were destroyed; every entry fails until
    /// a supervisor destroys and rebuilds it.
    lost: bool,
    /// An armed `epc_poison` fired at an earlier entry: the *next* EENTER
    /// finds the enclave lost.
    poisoned: bool,
}

struct Inner {
    epc: Epc,
    enclaves: HashMap<u32, EnclaveState>,
    /// base vaddr -> enclave id, so reverse address translation is a range
    /// query instead of a scan over every live enclave (fleet scale).
    by_base: BTreeMap<u64, u32>,
    next_eid: u32,
}

type DriverHook = Arc<dyn Fn(&DriverEvent) + Send + Sync>;
type AepObserver = Arc<dyn Fn(&AexEvent) + Send + Sync>;
type FaultHandler = Arc<dyn Fn(&MmuFault) + Send + Sync>;

#[derive(Default)]
struct Hooks {
    driver: Vec<DriverHook>,
    aep: Option<AepObserver>,
    mmu_fault: Option<FaultHandler>,
    fault_obs: Option<FaultObserver>,
    lifecycle: Option<LifecycleObserver>,
}

/// A simulated SGX-capable machine: shared virtual clock, one EPC, any
/// number of enclaves, and the hook points sgx-perf instruments.
///
/// The machine is `Send + Sync`; under the deterministic scheduler only one
/// logical thread calls into it at a time.
///
/// # Examples
///
/// ```
/// use sgx_sim::{AccessKind, EnclaveConfig, Machine, ThreadToken};
/// use sim_core::{Clock, HwProfile, Nanos};
///
/// let machine = Machine::new(Clock::new(), HwProfile::Unpatched);
/// let eid = machine.create_enclave(&EnclaveConfig::default())?;
/// // Touch the whole heap: everything is resident, so no faults.
/// let heap = machine.heap_range(eid)?;
/// let stats = machine.touch(eid, ThreadToken::MAIN, heap, AccessKind::Write)?;
/// assert_eq!(stats.page_faults, 0);
/// # Ok::<(), sgx_sim::SimError>(())
/// ```
pub struct Machine {
    clock: Clock,
    cost: CostModel,
    params: MachineParams,
    inner: Mutex<Inner>,
    hooks: Mutex<Hooks>,
    fault: Mutex<Option<Arc<FaultInjector>>>,
    sync_bus: Arc<SyncBus>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Machine")
            .field("profile", &self.cost.profile)
            .field("enclaves", &inner.enclaves.len())
            .field("epc_resident", &inner.epc.resident_count())
            .finish()
    }
}

impl Machine {
    /// Creates a machine with default parameters for the given hardware
    /// profile.
    pub fn new(clock: Clock, profile: HwProfile) -> Machine {
        Machine::with_params(clock, profile, MachineParams::default())
    }

    /// Creates a machine with explicit parameters (EPC size, eviction
    /// policy, creation costs).
    pub fn with_params(clock: Clock, profile: HwProfile, params: MachineParams) -> Machine {
        let sync_bus = Arc::new(SyncBus::new(clock.clone()));
        Machine {
            clock,
            cost: profile.cost_model(),
            inner: Mutex::new(Inner {
                epc: Epc::new(params.epc_pages, params.eviction),
                enclaves: HashMap::new(),
                by_base: BTreeMap::new(),
                next_eid: 1,
            }),
            params,
            hooks: Mutex::new(Hooks::default()),
            fault: Mutex::new(None),
            sync_bus,
        }
    }

    /// The machine's virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The machine's synchronisation event bus (see [`sim_core::syncev`]).
    pub fn sync_bus(&self) -> &Arc<SyncBus> {
        &self.sync_bus
    }

    /// The CPU cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The machine parameters in effect.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Total EPC capacity in pages.
    pub fn epc_capacity(&self) -> usize {
        self.inner.lock().epc.capacity()
    }

    /// Pages currently resident in the EPC across all enclaves.
    pub fn epc_resident(&self) -> usize {
        self.inner.lock().epc.resident_count()
    }

    /// Pages of one enclave currently resident in the EPC. O(1) — served
    /// from the EPC's per-enclave index, so fleet dashboards can poll it
    /// for thousands of enclaves without scanning page tables.
    pub fn epc_resident_of(&self, eid: EnclaveId) -> usize {
        self.inner.lock().epc.resident_of(eid)
    }

    /// Whether a specific enclave page is currently resident.
    pub fn is_resident(&self, eid: EnclaveId, page: usize) -> Result<bool, SimError> {
        let inner = self.inner.lock();
        Self::state(&inner, eid)?;
        Ok(inner.epc.contains((eid, page)))
    }

    // ------------------------------------------------------------------
    // Enclave lifecycle
    // ------------------------------------------------------------------

    /// Creates and initialises an enclave (`ECREATE` + `EADD`/`EEXTEND` per
    /// page + `EINIT`), loading all its pages into the EPC. Charges creation
    /// time and may evict pages of other enclaves if the EPC is full.
    pub fn create_enclave(&self, config: &EnclaveConfig) -> Result<EnclaveId, SimError> {
        let layout = EnclaveLayout::new(config);
        let mut events = Vec::new();
        let eid = {
            let mut inner = self.inner.lock();
            let raw = inner.next_eid;
            inner.next_eid += 1;
            let eid = EnclaveId(raw);
            let base = (raw as u64 + 1) << 36;
            let mut pages: Vec<PageState> = layout.iter().map(PageState::new).collect();
            for idx in 0..pages.len() {
                if let Some(victim) = inner.epc.insert((eid, idx)) {
                    if victim.0 == eid {
                        // The enclave under construction evicted one of its
                        // own earlier pages (it is larger than the EPC); it
                        // is not registered yet, so fix up locally.
                        pages[victim.1].resident = false;
                        events.push(DriverEvent::Paging {
                            direction: PagingDirection::Out,
                            enclave: eid,
                            vaddr: base + (victim.1 * PAGE_SIZE) as u64,
                            time: self.clock.now(),
                        });
                    } else {
                        Self::mark_evicted(&mut inner.enclaves, victim);
                        events.push(self.paging_event(
                            PagingDirection::Out,
                            victim,
                            &inner.enclaves,
                        ));
                    }
                }
                pages[idx].resident = true;
            }
            inner.enclaves.insert(
                raw,
                EnclaveState {
                    layout: layout.clone(),
                    pages,
                    base,
                    debug: config.debug,
                    lost: false,
                    poisoned: false,
                },
            );
            inner.by_base.insert(base, raw);
            events.push(DriverEvent::EnclaveCreated {
                enclave: eid,
                pages: layout.total_pages(),
                time: self.clock.now(),
            });
            eid
        };
        self.clock
            .advance(self.params.eadd_page * layout.total_pages() as u64 + self.params.einit);
        self.emit_driver_events(&events);
        Ok(eid)
    }

    /// Destroys an enclave and frees its EPC pages.
    pub fn destroy_enclave(&self, eid: EnclaveId) -> Result<(), SimError> {
        {
            let mut inner = self.inner.lock();
            let Some(st) = inner.enclaves.remove(&eid.0) else {
                return Err(SimError::UnknownEnclave(eid));
            };
            inner.by_base.remove(&st.base);
            inner.epc.remove_enclave(eid);
        }
        self.emit_driver_events(&[DriverEvent::EnclaveDestroyed {
            enclave: eid,
            time: self.clock.now(),
        }]);
        Ok(())
    }

    /// Static and residency information about an enclave.
    pub fn enclave_info(&self, eid: EnclaveId) -> Result<EnclaveInfo, SimError> {
        let inner = self.inner.lock();
        let st = Self::state(&inner, eid)?;
        Ok(EnclaveInfo {
            id: eid,
            base_vaddr: st.base,
            total_pages: st.layout.total_pages(),
            accessible_pages: st.layout.accessible_pages(),
            resident_pages: st.pages.iter().filter(|p| p.resident).count(),
            tcs_count: st.layout.tcs_count(),
            measurement: st.layout.measurement(),
            debug: st.debug,
        })
    }

    /// The enclave's heap page range.
    pub fn heap_range(&self, eid: EnclaveId) -> Result<Range<usize>, SimError> {
        let inner = self.inner.lock();
        Ok(Self::state(&inner, eid)?.layout.heap_range())
    }

    /// The enclave's code page range.
    pub fn code_range(&self, eid: EnclaveId) -> Result<Range<usize>, SimError> {
        let inner = self.inner.lock();
        Ok(Self::state(&inner, eid)?.layout.code_range())
    }

    /// The page index of thread `tcs_index`'s TCS.
    pub fn tcs_page(&self, eid: EnclaveId, tcs_index: usize) -> Result<usize, SimError> {
        let inner = self.inner.lock();
        let st = Self::state(&inner, eid)?;
        st.layout
            .thread_pages()
            .get(tcs_index)
            .map(|t| t.tcs)
            .ok_or(SimError::PageOutOfRange {
                enclave: eid,
                page: tcs_index,
                total: st.layout.tcs_count(),
            })
    }

    /// The stack page range of enclave thread `tcs_index`.
    pub fn stack_range(&self, eid: EnclaveId, tcs_index: usize) -> Result<Range<usize>, SimError> {
        let inner = self.inner.lock();
        let st = Self::state(&inner, eid)?;
        st.layout
            .thread_pages()
            .get(tcs_index)
            .map(|t| t.stack.clone())
            .ok_or(SimError::PageOutOfRange {
                enclave: eid,
                page: tcs_index,
                total: st.layout.tcs_count(),
            })
    }

    /// Virtual address of page `index` inside the enclave.
    pub fn page_vaddr(&self, eid: EnclaveId, index: usize) -> Result<u64, SimError> {
        let inner = self.inner.lock();
        let st = Self::state(&inner, eid)?;
        if index >= st.layout.total_pages() {
            return Err(SimError::PageOutOfRange {
                enclave: eid,
                page: index,
                total: st.layout.total_pages(),
            });
        }
        Ok(st.base + (index * PAGE_SIZE) as u64)
    }

    /// Maps a virtual address back to (enclave, page index), if it belongs
    /// to a live enclave. One ordered-map range query — O(log n) in the
    /// number of live enclaves.
    pub fn vaddr_to_page(&self, vaddr: u64) -> Option<(EnclaveId, usize)> {
        let inner = self.inner.lock();
        let (&base, &raw) = inner.by_base.range(..=vaddr).next_back()?;
        let st = inner.enclaves.get(&raw)?;
        let size = (st.layout.total_pages() * PAGE_SIZE) as u64;
        if vaddr < base + size {
            Some((EnclaveId(raw), ((vaddr - base) as usize) / PAGE_SIZE))
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Hooks (what sgx-perf instruments)
    // ------------------------------------------------------------------

    /// Registers a kernel-driver hook (the kprobe stand-in). Hooks receive
    /// paging and lifecycle events.
    pub fn add_driver_hook(&self, hook: DriverHook) {
        self.hooks.lock().driver.push(hook);
    }

    /// Patches the Asynchronous Exit Pointer: `observer` runs on every AEX
    /// before `ERESUME`. Pass `None` to restore the plain AEP.
    pub fn set_aep_observer(&self, observer: Option<AepObserver>) {
        self.hooks.lock().aep = observer;
    }

    /// Installs the MMU access-fault handler used by the working-set
    /// estimator. After the handler runs the machine restores the page's
    /// natural permissions and retries the access.
    pub fn set_mmu_fault_handler(&self, handler: Option<FaultHandler>) {
        self.hooks.lock().mmu_fault = handler;
    }

    /// Arms a deterministic fault plan (or disarms injection with `None`).
    /// The plan's seed is consumed immediately to fix fault magnitudes;
    /// see [`sim_core::fault`] for the determinism contract. With no plan
    /// armed every injection site is a structural no-op.
    pub fn set_fault_plan(&self, plan: Option<&FaultPlan>) {
        *self.fault.lock() = plan.map(|p| Arc::new(FaultInjector::new(p)));
    }

    /// The armed fault injector, if any. SDK layers poll this at their
    /// own injection sites (ocalls, switchless, TCS binding).
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.fault.lock().clone()
    }

    /// Registers the fault-event observer (the logger's hook): it runs on
    /// every injected fault and every SDK recovery step, machine-level
    /// and SDK-level alike.
    pub fn set_fault_observer(&self, observer: Option<FaultObserver>) {
        self.hooks.lock().fault_obs = observer;
    }

    /// Reports a fault-injection or recovery event to the observer.
    /// Called by the machine's own sites and by the SDK's.
    pub fn notify_fault(&self, event: &FaultEvent) {
        let observer = self.hooks.lock().fault_obs.clone();
        if let Some(observer) = observer {
            observer(event);
        }
    }

    /// Registers the enclave-lifecycle observer (the logger's hook): it
    /// runs on every loss and on every supervisor recovery stage.
    pub fn set_lifecycle_observer(&self, observer: Option<LifecycleObserver>) {
        self.hooks.lock().lifecycle = observer;
    }

    /// Reports an enclave-lifecycle event to the observer. Called by the
    /// machine when an enclave is lost and by the SDK supervisor for the
    /// rebuild/replay/retry/recovered stages.
    pub fn notify_lifecycle(&self, event: &LifecycleEvent) {
        let observer = self.hooks.lock().lifecycle.clone();
        if let Some(observer) = observer {
            observer(event);
        }
    }

    /// Strips all MMU permissions from every accessible page of the
    /// enclave. Subsequent accesses fault into the registered handler.
    pub fn strip_mmu_perms(&self, eid: EnclaveId) -> Result<usize, SimError> {
        let mut inner = self.inner.lock();
        let st = Self::state_mut(&mut inner, eid)?;
        let mut stripped = 0;
        for page in st.pages.iter_mut() {
            if page.kind.is_accessible() && !page.mmu_perms.is_none() {
                page.mmu_perms = Perms::NONE;
                stripped += 1;
            }
        }
        Ok(stripped)
    }

    /// Restores natural MMU permissions on every page of the enclave.
    pub fn restore_mmu_perms(&self, eid: EnclaveId) -> Result<(), SimError> {
        let mut inner = self.inner.lock();
        let st = Self::state_mut(&mut inner, eid)?;
        for page in st.pages.iter_mut() {
            page.mmu_perms = page.natural_perms;
        }
        Ok(())
    }

    /// Per-page access counts since enclave creation, indexed by page.
    pub fn access_counts(&self, eid: EnclaveId) -> Result<Vec<u64>, SimError> {
        let inner = self.inner.lock();
        let st = Self::state(&inner, eid)?;
        Ok(st.pages.iter().map(|p| p.access_count).collect())
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// One EENTER: the entry gate every ecall dispatch passes through
    /// before any transition cost is charged.
    ///
    /// Checks that the enclave is not lost, applies a pending
    /// `epc_poison` (the previous poll's poison destroys the enclave
    /// *now*, before this entry), and polls the fault injector's entry
    /// site — a due `enclave_lost` fails this very entry, a due
    /// `epc_poison` lets it proceed but dooms the next one.
    ///
    /// # Errors
    ///
    /// [`SimError::EnclaveLost`] when the enclave is (or just became)
    /// lost; [`SimError::UnknownEnclave`] when it never existed.
    pub fn enter_enclave(&self, eid: EnclaveId, thread: ThreadToken) -> Result<(), SimError> {
        let pending_poison = {
            let inner = self.inner.lock();
            let st = Self::state(&inner, eid)?;
            if st.lost {
                return Err(SimError::EnclaveLost(eid));
            }
            st.poisoned
        };
        if pending_poison {
            self.mark_lost(eid, thread, FaultKind::EpcPoison.code());
            return Err(SimError::EnclaveLost(eid));
        }
        if let Some(inj) = self.fault_injector() {
            let due = inj.on_eenter(self.clock.now());
            if due.poison {
                // The poisoning entry itself still succeeds; the damage
                // surfaces at the next EENTER.
                let mut inner = self.inner.lock();
                if let Ok(st) = Self::state_mut(&mut inner, eid) {
                    st.poisoned = true;
                }
                drop(inner);
                self.notify_fault(&FaultEvent {
                    code: FaultKind::EpcPoison.code(),
                    action: FaultAction::Injected,
                    enclave: eid.0,
                    thread: thread.0 as u64,
                    call_index: None,
                    magnitude: 0,
                    time: self.clock.now(),
                });
            }
            if due.lost {
                self.mark_lost(eid, thread, FaultKind::EnclaveLost.code());
                return Err(SimError::EnclaveLost(eid));
            }
        }
        Ok(())
    }

    /// Destroys the enclave's EPC contents in place: every resident page is
    /// dropped (silently — there is no EWB for vanished contents, so no
    /// paging events), the enclave is flagged lost, and the loss is
    /// reported through the driver, fault and lifecycle channels. The id
    /// stays registered so subsequent entries fail with
    /// [`SimError::EnclaveLost`] until a supervisor rebuilds the enclave.
    fn mark_lost(&self, eid: EnclaveId, thread: ThreadToken, fault_code: u8) {
        {
            let mut inner = self.inner.lock();
            let Ok(st) = Self::state_mut(&mut inner, eid) else {
                return;
            };
            if st.lost {
                return;
            }
            st.lost = true;
            st.poisoned = false;
            for page in st.pages.iter_mut() {
                page.resident = false;
            }
            let total = st.layout.total_pages();
            for index in 0..total {
                inner.epc.remove((eid, index));
            }
        }
        let now = self.clock.now();
        self.emit_driver_events(&[DriverEvent::EnclaveLost {
            enclave: eid,
            time: now,
        }]);
        self.notify_fault(&FaultEvent {
            code: fault_code,
            action: FaultAction::Injected,
            enclave: eid.0,
            thread: thread.0 as u64,
            call_index: None,
            magnitude: 0,
            time: now,
        });
        self.notify_lifecycle(&LifecycleEvent {
            stage: LifecycleStage::Lost,
            enclave: eid.0,
            thread: thread.0 as u64,
            attempt: 0,
            magnitude: 0,
            time: now,
        });
    }

    /// Whether the enclave is currently lost.
    pub fn is_lost(&self, eid: EnclaveId) -> Result<bool, SimError> {
        let inner = self.inner.lock();
        Ok(Self::state(&inner, eid)?.lost)
    }

    /// Runs `dur` of in-enclave computation, injecting a timer-interrupt
    /// AEX each time the virtual clock crosses a timer quantum boundary.
    /// Returns the number of AEXs taken.
    pub fn execute_in_enclave(
        &self,
        eid: EnclaveId,
        thread: ThreadToken,
        dur: Nanos,
    ) -> Result<u64, SimError> {
        {
            let inner = self.inner.lock();
            let st = Self::state(&inner, eid)?;
            if st.lost {
                return Err(SimError::EnclaveLost(eid));
            }
        }
        let mut aex_count = 0;
        if let Some(inj) = self.fault_injector() {
            let faults = inj.on_enclave_exec(self.clock.now());
            if faults.lost {
                // A time-triggered loss lands mid-execution: the thread is
                // unwound with an AEX-style exit whose ERESUME never
                // happens — charge only the exit, skip the AEP observer
                // (there is no enclave left to resume into).
                self.clock.advance(self.cost.aex_exit);
                self.mark_lost(eid, thread, FaultKind::EnclaveLost.code());
                return Err(SimError::EnclaveLost(eid));
            }
            if let Some(burst) = faults.aex_storm {
                self.notify_fault(&FaultEvent {
                    code: FaultKind::AexStorm { count: burst }.code(),
                    action: FaultAction::Injected,
                    enclave: eid.0,
                    thread: thread.0 as u64,
                    call_index: None,
                    magnitude: u64::from(burst),
                    time: self.clock.now(),
                });
                for _ in 0..burst {
                    self.deliver_aex(eid, thread, AexCause::Interrupt);
                }
                aex_count += u64::from(burst);
            }
            if faults.evict_storm {
                let evicted = self.evict_all(eid)?;
                self.notify_fault(&FaultEvent {
                    code: FaultKind::EvictStorm.code(),
                    action: FaultAction::Injected,
                    enclave: eid.0,
                    thread: thread.0 as u64,
                    call_index: None,
                    magnitude: evicted as u64,
                    time: self.clock.now(),
                });
            }
        }
        let quantum = self.cost.timer_quantum.as_nanos();
        let mut remaining = dur.as_nanos();
        while remaining > 0 {
            let now = self.clock.now().as_nanos();
            let next_tick = (now / quantum + 1) * quantum;
            let until_tick = next_tick - now;
            if remaining < until_tick {
                self.clock.advance(Nanos::from_nanos(remaining));
                break;
            }
            self.clock.advance(Nanos::from_nanos(until_tick));
            remaining -= until_tick;
            self.deliver_aex(eid, thread, AexCause::Interrupt);
            aex_count += 1;
        }
        Ok(aex_count)
    }

    /// Accesses a range of enclave pages, taking MMU access faults and EPC
    /// page faults as needed. Returns fault statistics.
    ///
    /// # Errors
    ///
    /// * [`SimError::Segfault`] if the range includes guard, padding or
    ///   metadata pages.
    /// * [`SimError::UnhandledMmuFault`] if permissions were stripped but no
    ///   fault handler is installed.
    pub fn touch(
        &self,
        eid: EnclaveId,
        thread: ThreadToken,
        pages: Range<usize>,
        access: AccessKind,
    ) -> Result<TouchStats, SimError> {
        let mut stats = TouchStats::default();
        for index in pages {
            self.touch_page(eid, thread, index, access, &mut stats)?;
        }
        Ok(stats)
    }

    fn touch_page(
        &self,
        eid: EnclaveId,
        thread: ThreadToken,
        index: usize,
        access: AccessKind,
        stats: &mut TouchStats,
    ) -> Result<(), SimError> {
        // Phase 1: examine under lock.
        let (needs_mmu_fault, vaddr) = {
            let mut inner = self.inner.lock();
            let st = Self::state_mut(&mut inner, eid)?;
            if st.lost {
                return Err(SimError::EnclaveLost(eid));
            }
            let total = st.layout.total_pages();
            if index >= total {
                return Err(SimError::PageOutOfRange {
                    enclave: eid,
                    page: index,
                    total,
                });
            }
            let page = &st.pages[index];
            if !page.kind.is_accessible() {
                return Err(SimError::Segfault {
                    enclave: eid,
                    page: index,
                    kind: page.kind,
                });
            }
            let vaddr = st.base + (index * PAGE_SIZE) as u64;
            // The MMU permissions are checked before the SGX (EPCM) ones
            // (§4.2); a stripped page faults even if resident.
            let needs_fault = !page.mmu_perms.allows(access.required_perms());
            (needs_fault, vaddr)
        };

        if needs_mmu_fault {
            self.handle_mmu_fault(eid, thread, index, vaddr)?;
            stats.mmu_faults += 1;
        }

        // Phase 2: residency (EPC) check.
        let (fault, mut events) = {
            let mut inner = self.inner.lock();
            let mut events = Vec::new();
            let resident = {
                let st = Self::state(&inner, eid)?;
                st.pages[index].resident
            };
            let fault = if resident {
                inner.epc.touch((eid, index));
                false
            } else {
                // EPC page fault: page the page back in, evicting if needed.
                if let Some(victim) = inner.epc.insert((eid, index)) {
                    Self::mark_evicted(&mut inner.enclaves, victim);
                    events.push(self.paging_event(PagingDirection::Out, victim, &inner.enclaves));
                    stats.evictions += 1;
                }
                let st = Self::state_mut(&mut inner, eid)?;
                st.pages[index].resident = true;
                events.push(DriverEvent::Paging {
                    direction: PagingDirection::In,
                    enclave: eid,
                    vaddr,
                    time: self.clock.now(),
                });
                true
            };
            let st = Self::state_mut(&mut inner, eid)?;
            st.pages[index].access_count += 1;
            (fault, events)
        };
        if fault {
            stats.page_faults += 1;
            // The fault exits the enclave asynchronously, the driver does
            // the (costly) paging work, then the enclave resumes.
            self.deliver_aex(eid, thread, AexCause::PageFault);
            let mut cost = self.cost.page_in;
            if stats.evictions > 0 {
                cost += self.cost.page_out;
            }
            // A transient EWB/ELDU slowdown inflates the paging work.
            if let Some(inj) = self.fault_injector() {
                if let Some(slow) = inj.paging_slowdown(self.clock.now()) {
                    if slow.opened {
                        self.notify_fault(&FaultEvent {
                            code: FaultKind::PagingSlow {
                                factor: slow.factor as u32,
                                duration: Nanos::from_nanos(0),
                            }
                            .code(),
                            action: FaultAction::Injected,
                            enclave: eid.0,
                            thread: thread.0 as u64,
                            call_index: None,
                            magnitude: slow.factor as u64,
                            time: self.clock.now(),
                        });
                    }
                    cost = cost.scale(slow.factor);
                }
            }
            self.clock.advance(cost);
            // Stamp events after the cost so timestamps reflect completion.
            for ev in &mut events {
                if let DriverEvent::Paging { time, .. } = ev {
                    *time = self.clock.now();
                }
            }
        }
        self.emit_driver_events(&events);
        Ok(())
    }

    /// Whether the AEX cause is observable by tooling for this enclave:
    /// SGX v2 records the exit type, readable when the enclave is a debug
    /// enclave (§4.1.4).
    pub fn aex_cause_visible(&self, eid: EnclaveId) -> bool {
        if self.params.sgx_version != SgxVersion::V2 {
            return false;
        }
        let inner = self.inner.lock();
        Self::state(&inner, eid).map(|st| st.debug).unwrap_or(false)
    }

    /// SGX v2 dynamic memory (`EAUG`+`EACCEPT`): converts up to `pages`
    /// of the enclave's padding reserve into usable heap, returning the
    /// new pages' index range. The enclave's measured size is unchanged —
    /// only pre-reserved address space is populated (§2.3.3: "the enclave
    /// can be created small and ... new pages may be added on-demand").
    ///
    /// # Errors
    ///
    /// [`SimError::RequiresSgxV2`] on a v1 machine;
    /// [`SimError::OutOfEnclaveSpace`] when the padding reserve is too
    /// small.
    pub fn extend_heap(&self, eid: EnclaveId, pages: usize) -> Result<Range<usize>, SimError> {
        if self.params.sgx_version != SgxVersion::V2 {
            return Err(SimError::RequiresSgxV2);
        }
        let mut events = Vec::new();
        let range = {
            let mut inner = self.inner.lock();
            {
                let st = Self::state(&inner, eid)?;
                let padding: Vec<usize> = st
                    .pages
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.kind == PageKind::Padding)
                    .map(|(i, _)| i)
                    .take(pages + 1)
                    .collect();
                if padding.len() < pages {
                    return Err(SimError::OutOfEnclaveSpace {
                        enclave: eid,
                        requested: pages,
                        available: padding.len(),
                    });
                }
            }
            // Convert the first `pages` padding pages (they are contiguous
            // by construction) and make them resident.
            let mut first = None;
            let mut converted = 0;
            let total = Self::state(&inner, eid)?.layout.total_pages();
            for idx in 0..total {
                if converted == pages {
                    break;
                }
                let is_padding = {
                    let st = Self::state(&inner, eid)?;
                    st.pages[idx].kind == PageKind::Padding
                };
                if !is_padding {
                    continue;
                }
                first.get_or_insert(idx);
                if let Some(victim) = inner.epc.insert((eid, idx)) {
                    Self::mark_evicted(&mut inner.enclaves, victim);
                    events.push(self.paging_event(PagingDirection::Out, victim, &inner.enclaves));
                }
                let st = Self::state_mut(&mut inner, eid)?;
                let page = &mut st.pages[idx];
                page.kind = PageKind::Heap;
                page.natural_perms = PageKind::Heap.natural_perms();
                page.mmu_perms = page.natural_perms;
                page.resident = true;
                converted += 1;
            }
            let first = first.expect("checked padding availability");
            first..first + pages
        };
        self.clock.advance(self.params.eaug_page * pages as u64);
        self.emit_driver_events(&events);
        Ok(range)
    }

    /// Loads a range of enclave pages into the EPC from *outside* enclave
    /// execution (the §3.5(ii) mitigation: "load pages before the ecall").
    /// Unlike [`Machine::touch`], faults taken here cost no AEX — the
    /// processor is not inside the enclave — and MMU permissions are not
    /// consulted (the driver populates the EPC directly). Returns how many
    /// pages were paged in.
    pub fn prefetch(&self, eid: EnclaveId, pages: Range<usize>) -> Result<usize, SimError> {
        let mut paged_in = 0;
        for index in pages {
            let mut fault_event = None;
            let (faulted, events) = {
                let mut inner = self.inner.lock();
                let st = Self::state(&inner, eid)?;
                if st.lost {
                    return Err(SimError::EnclaveLost(eid));
                }
                let total = st.layout.total_pages();
                if index >= total {
                    return Err(SimError::PageOutOfRange {
                        enclave: eid,
                        page: index,
                        total,
                    });
                }
                if st.pages[index].resident {
                    inner.epc.touch((eid, index));
                    (false, Vec::new())
                } else {
                    let mut events = Vec::new();
                    let mut evicted = false;
                    if let Some(victim) = inner.epc.insert((eid, index)) {
                        Self::mark_evicted(&mut inner.enclaves, victim);
                        events.push(self.paging_event(
                            PagingDirection::Out,
                            victim,
                            &inner.enclaves,
                        ));
                        evicted = true;
                    }
                    let st = Self::state_mut(&mut inner, eid)?;
                    st.pages[index].resident = true;
                    let vaddr = st.base + (index * PAGE_SIZE) as u64;
                    let mut cost = self.cost.page_in;
                    if evicted {
                        cost += self.cost.page_out;
                    }
                    // EWB/ELDU slowdowns hit driver-side paging too.
                    if let Some(inj) = self.fault_injector() {
                        if let Some(slow) = inj.paging_slowdown(self.clock.now()) {
                            if slow.opened {
                                fault_event = Some(FaultEvent {
                                    code: FaultKind::PagingSlow {
                                        factor: slow.factor as u32,
                                        duration: Nanos::from_nanos(0),
                                    }
                                    .code(),
                                    action: FaultAction::Injected,
                                    enclave: eid.0,
                                    thread: 0,
                                    call_index: None,
                                    magnitude: slow.factor as u64,
                                    time: self.clock.now(),
                                });
                            }
                            cost = cost.scale(slow.factor);
                        }
                    }
                    self.clock.advance(cost);
                    events.push(DriverEvent::Paging {
                        direction: PagingDirection::In,
                        enclave: eid,
                        vaddr,
                        time: self.clock.now(),
                    });
                    (true, events)
                }
            };
            if faulted {
                paged_in += 1;
            }
            if let Some(ev) = fault_event {
                self.notify_fault(&ev);
            }
            self.emit_driver_events(&events);
        }
        Ok(paged_in)
    }

    /// Forces eviction of every resident page of the enclave (used by
    /// experiments to start from a cold EPC without destroying the
    /// enclave). Charges no time: models the driver reclaiming pages while
    /// the enclave is idle.
    pub fn evict_all(&self, eid: EnclaveId) -> Result<usize, SimError> {
        let mut events = Vec::new();
        let count = {
            let mut inner = self.inner.lock();
            Self::state(&inner, eid)?;
            let mut count = 0;
            let st = inner.enclaves.get_mut(&eid.0).expect("checked above");
            let total = st.layout.total_pages();
            for index in 0..total {
                if st.pages[index].resident {
                    st.pages[index].resident = false;
                    count += 1;
                    events.push(DriverEvent::Paging {
                        direction: PagingDirection::Out,
                        enclave: eid,
                        vaddr: st.base + (index * PAGE_SIZE) as u64,
                        time: self.clock.now(),
                    });
                }
            }
            for index in 0..total {
                inner.epc.remove((eid, index));
            }
            count
        };
        self.emit_driver_events(&events);
        Ok(count)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn state(inner: &Inner, eid: EnclaveId) -> Result<&EnclaveState, SimError> {
        inner
            .enclaves
            .get(&eid.0)
            .ok_or(SimError::UnknownEnclave(eid))
    }

    fn state_mut(inner: &mut Inner, eid: EnclaveId) -> Result<&mut EnclaveState, SimError> {
        inner
            .enclaves
            .get_mut(&eid.0)
            .ok_or(SimError::UnknownEnclave(eid))
    }

    fn mark_evicted(enclaves: &mut HashMap<u32, EnclaveState>, victim: (EnclaveId, usize)) {
        if let Some(st) = enclaves.get_mut(&victim.0 .0) {
            st.pages[victim.1].resident = false;
        }
    }

    fn paging_event(
        &self,
        direction: PagingDirection,
        key: (EnclaveId, usize),
        enclaves: &HashMap<u32, EnclaveState>,
    ) -> DriverEvent {
        let vaddr = enclaves
            .get(&key.0 .0)
            .map(|st| st.base + (key.1 * PAGE_SIZE) as u64)
            .unwrap_or(0);
        DriverEvent::Paging {
            direction,
            enclave: key.0,
            vaddr,
            time: self.clock.now(),
        }
    }

    fn emit_driver_events(&self, events: &[DriverEvent]) {
        if events.is_empty() {
            return;
        }
        let hooks: Vec<DriverHook> = self.hooks.lock().driver.clone();
        for hook in hooks {
            for ev in events {
                hook(ev);
            }
        }
    }

    /// Delivers one AEX: charges the exit, runs the AEP observer (the
    /// logger's patch point), charges the resume.
    fn deliver_aex(&self, eid: EnclaveId, thread: ThreadToken, cause: AexCause) {
        self.clock.advance(self.cost.aex_exit);
        let observer = self.hooks.lock().aep.clone();
        if let Some(observer) = observer {
            observer(&AexEvent {
                enclave: eid,
                thread,
                time: self.clock.now(),
                cause,
            });
        }
        self.clock.advance(self.cost.eresume);
    }

    fn handle_mmu_fault(
        &self,
        eid: EnclaveId,
        thread: ThreadToken,
        index: usize,
        vaddr: u64,
    ) -> Result<(), SimError> {
        let handler = self.hooks.lock().mmu_fault.clone();
        let Some(handler) = handler else {
            return Err(SimError::UnhandledMmuFault {
                enclave: eid,
                page: index,
            });
        };
        // Faulting inside the enclave causes an AEX before the kernel can
        // deliver the signal.
        self.deliver_aex(eid, thread, AexCause::AccessFault);
        self.clock.advance(self.params.mmu_fault_delivery);
        handler(&MmuFault {
            enclave: eid,
            thread,
            page_index: index,
            vaddr,
            time: self.clock.now(),
        });
        // The handler (working-set estimator) restores permissions so the
        // access can proceed; the machine performs the actual restore.
        let mut inner = self.inner.lock();
        let st = Self::state_mut(&mut inner, eid)?;
        st.pages[index].mmu_perms = st.pages[index].natural_perms;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn machine() -> Machine {
        Machine::new(Clock::new(), HwProfile::Unpatched)
    }

    fn tiny_machine(epc_pages: usize) -> Machine {
        Machine::with_params(
            Clock::new(),
            HwProfile::Unpatched,
            MachineParams {
                epc_pages,
                ..MachineParams::default()
            },
        )
    }

    #[test]
    fn create_enclave_loads_all_pages() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let info = m.enclave_info(eid).unwrap();
        assert_eq!(info.resident_pages, info.total_pages);
        assert!(info.total_pages.is_power_of_two());
    }

    #[test]
    fn creation_charges_time() {
        let m = machine();
        let before = m.clock().now();
        m.create_enclave(&EnclaveConfig::default()).unwrap();
        assert!(m.clock().now() > before);
    }

    #[test]
    fn destroy_frees_epc() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        m.destroy_enclave(eid).unwrap();
        assert!(matches!(
            m.enclave_info(eid),
            Err(SimError::UnknownEnclave(_))
        ));
    }

    #[test]
    fn touch_resident_pages_is_fault_free() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let heap = m.heap_range(eid).unwrap();
        let stats = m
            .touch(eid, ThreadToken::MAIN, heap, AccessKind::Write)
            .unwrap();
        assert_eq!(stats, TouchStats::default());
    }

    #[test]
    fn touching_guard_page_segfaults() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        // The page right before the first stack is a guard page.
        let info = m.enclave_info(eid).unwrap();
        // Skip page 0 (metadata, also inaccessible) to find a real guard.
        let guard = (1..info.total_pages)
            .find(|&i| {
                matches!(
                    m.touch(eid, ThreadToken::MAIN, i..i + 1, AccessKind::Read),
                    Err(SimError::Segfault { .. })
                )
            })
            .expect("layout contains a guard/padding page");
        assert!(guard > 0);
    }

    #[test]
    fn page_fault_after_eviction_costs_time_and_emits_events() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        m.evict_all(eid).unwrap();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        m.add_driver_hook(Arc::new(move |ev| {
            if let DriverEvent::Paging {
                direction: PagingDirection::In,
                ..
            } = ev
            {
                seen2.fetch_add(1, Ordering::SeqCst);
            }
        }));
        let heap = m.heap_range(eid).unwrap();
        let pages = heap.len();
        let before = m.clock().now();
        let stats = m
            .touch(eid, ThreadToken::MAIN, heap, AccessKind::Read)
            .unwrap();
        assert_eq!(stats.page_faults, pages);
        assert_eq!(seen.load(Ordering::SeqCst), pages);
        let elapsed = m.clock().now() - before;
        assert!(elapsed >= m.cost_model().page_in * pages as u64);
    }

    #[test]
    fn enclave_larger_than_epc_self_evicts_at_creation() {
        // Regression: pages evicted during the enclave's *own* creation
        // must be marked non-resident so later touches fault them back in.
        let m = tiny_machine(96);
        let eid = m
            .create_enclave(&EnclaveConfig {
                heap_kib: 1_024, // enclave ends up 512 pages, EPC holds 96
                ..EnclaveConfig::default()
            })
            .unwrap();
        let info = m.enclave_info(eid).unwrap();
        assert_eq!(info.resident_pages, 96);
        // Touching an early heap page must page-fault.
        let heap = m.heap_range(eid).unwrap();
        let stats = m
            .touch(
                eid,
                ThreadToken::MAIN,
                heap.start..heap.start + 1,
                AccessKind::Read,
            )
            .unwrap();
        assert_eq!(stats.page_faults, 1);
    }

    #[test]
    fn epc_pressure_between_enclaves_causes_paging() {
        // EPC fits one default enclave but not two.
        let one = EnclaveLayout::new(&EnclaveConfig::default()).total_pages();
        let m = tiny_machine(one + one / 2);
        let a = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let _b = m.create_enclave(&EnclaveConfig::default()).unwrap();
        // Creating b evicted some of a's pages.
        let info_a = m.enclave_info(a).unwrap();
        assert!(info_a.resident_pages < info_a.total_pages);
    }

    #[test]
    fn timer_aex_injection_matches_quantum() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let aex_seen = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&aex_seen);
        m.set_aep_observer(Some(Arc::new(move |ev: &AexEvent| {
            assert_eq!(ev.cause, AexCause::Interrupt);
            a2.fetch_add(1, Ordering::SeqCst);
        })));
        // Table 2 experiment (3): a 45,377 us ecall sees ~11.5 AEXs.
        let n = m
            .execute_in_enclave(eid, ThreadToken::MAIN, Nanos::from_micros(45_377))
            .unwrap();
        assert_eq!(n as usize, aex_seen.load(Ordering::SeqCst));
        assert!((11..=12).contains(&n), "AEX count {n}");
    }

    #[test]
    fn short_execution_takes_no_aex() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let n = m
            .execute_in_enclave(eid, ThreadToken::MAIN, Nanos::from_micros(10))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn stripped_perms_fault_into_handler_and_restore() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let stripped = m.strip_mmu_perms(eid).unwrap();
        assert!(stripped > 0);
        let faults = Arc::new(Mutex::new(Vec::new()));
        let f2 = Arc::clone(&faults);
        m.set_mmu_fault_handler(Some(Arc::new(move |fault: &MmuFault| {
            f2.lock().push(fault.page_index);
        })));
        let heap = m.heap_range(eid).unwrap();
        let first = heap.start;
        // First touch faults...
        let s1 = m
            .touch(eid, ThreadToken::MAIN, first..first + 1, AccessKind::Read)
            .unwrap();
        assert_eq!(s1.mmu_faults, 1);
        // ...second touch doesn't (perms restored).
        let s2 = m
            .touch(eid, ThreadToken::MAIN, first..first + 1, AccessKind::Read)
            .unwrap();
        assert_eq!(s2.mmu_faults, 0);
        assert_eq!(faults.lock().as_slice(), &[first]);
    }

    #[test]
    fn stripped_perms_without_handler_error() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        m.strip_mmu_perms(eid).unwrap();
        let heap = m.heap_range(eid).unwrap();
        let err = m
            .touch(
                eid,
                ThreadToken::MAIN,
                heap.start..heap.start + 1,
                AccessKind::Read,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::UnhandledMmuFault { .. }));
    }

    #[test]
    fn vaddr_mapping_roundtrips() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let va = m.page_vaddr(eid, 5).unwrap();
        assert_eq!(m.vaddr_to_page(va), Some((eid, 5)));
        assert_eq!(m.vaddr_to_page(0xdead), None);
    }

    #[test]
    fn vaddr_mapping_survives_fleet_churn() {
        // Many enclaves, one destroyed in the middle: the base index must
        // keep translating live enclaves and reject the destroyed one's
        // addresses plus inter-enclave gaps.
        let m = machine();
        let eids: Vec<EnclaveId> = (0..8)
            .map(|_| m.create_enclave(&EnclaveConfig::default()).unwrap())
            .collect();
        m.destroy_enclave(eids[3]).unwrap();
        for (i, &eid) in eids.iter().enumerate() {
            if i == 3 {
                continue;
            }
            let va = m.page_vaddr(eid, 7).unwrap();
            assert_eq!(m.vaddr_to_page(va), Some((eid, 7)));
        }
        // An address in the destroyed enclave's old range no longer maps.
        let dead_base = (eids[3].0 as u64 + 1) << 36;
        assert_eq!(m.vaddr_to_page(dead_base + 4096), None);
        // Just past the end of a live enclave falls into the gap.
        let info = m.enclave_info(eids[0]).unwrap();
        let past_end = info.base_vaddr + (info.total_pages * PAGE_SIZE) as u64;
        assert_eq!(m.vaddr_to_page(past_end), None);
    }

    #[test]
    fn per_enclave_residency_is_tracked() {
        let m = machine();
        let a = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let b = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let total = m.enclave_info(a).unwrap().total_pages;
        assert_eq!(m.epc_resident_of(a), total);
        assert_eq!(m.epc_resident_of(b), total);
        m.evict_all(a).unwrap();
        assert_eq!(m.epc_resident_of(a), 0);
        assert_eq!(m.epc_resident_of(b), total);
    }

    #[test]
    fn access_counts_accumulate() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let heap = m.heap_range(eid).unwrap();
        let p = heap.start;
        for _ in 0..3 {
            m.touch(eid, ThreadToken::MAIN, p..p + 1, AccessKind::Read)
                .unwrap();
        }
        let counts = m.access_counts(eid).unwrap();
        assert_eq!(counts[p], 3);
    }

    fn v2_machine() -> Machine {
        Machine::with_params(
            Clock::new(),
            HwProfile::Unpatched,
            MachineParams {
                sgx_version: SgxVersion::V2,
                ..MachineParams::default()
            },
        )
    }

    #[test]
    fn eaug_requires_v2() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        assert_eq!(m.extend_heap(eid, 4), Err(SimError::RequiresSgxV2));
    }

    #[test]
    fn eaug_converts_padding_into_usable_heap() {
        let m = v2_machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let info_before = m.enclave_info(eid).unwrap();
        let range = m.extend_heap(eid, 8).unwrap();
        assert_eq!(range.len(), 8);
        // The new pages are immediately usable.
        let stats = m
            .touch(eid, ThreadToken::MAIN, range.clone(), AccessKind::Write)
            .unwrap();
        assert_eq!(stats, TouchStats::default());
        // Measured size unchanged; accessible pages grew.
        let info_after = m.enclave_info(eid).unwrap();
        assert_eq!(info_after.total_pages, info_before.total_pages);
        assert_eq!(
            info_after.accessible_pages,
            info_before.accessible_pages // layout-derived, creation-time
        );
        assert_eq!(info_after.measurement, info_before.measurement);
        // Before the conversion, touching the same pages segfaulted.
        let m2 = v2_machine();
        let eid2 = m2.create_enclave(&EnclaveConfig::default()).unwrap();
        let err = m2
            .touch(eid2, ThreadToken::MAIN, range, AccessKind::Write)
            .unwrap_err();
        assert!(matches!(err, SimError::Segfault { .. }));
    }

    #[test]
    fn eaug_exhausts_padding_reserve() {
        let m = v2_machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let err = m.extend_heap(eid, 1_000_000).unwrap_err();
        assert!(matches!(err, SimError::OutOfEnclaveSpace { .. }));
    }

    #[test]
    fn eaug_charges_time() {
        let m = v2_machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let before = m.clock().now();
        m.extend_heap(eid, 4).unwrap();
        assert_eq!(m.clock().now() - before, m.params().eaug_page * 4);
    }

    #[test]
    fn aex_cause_visible_only_on_v2_debug_enclaves() {
        let v1 = machine();
        let eid1 = v1.create_enclave(&EnclaveConfig::default()).unwrap();
        assert!(!v1.aex_cause_visible(eid1));

        let v2 = v2_machine();
        let debug = v2.create_enclave(&EnclaveConfig::default()).unwrap();
        assert!(v2.aex_cause_visible(debug));
        let release = v2
            .create_enclave(&EnclaveConfig {
                debug: false,
                ..EnclaveConfig::default()
            })
            .unwrap();
        assert!(!v2.aex_cause_visible(release));
    }

    #[test]
    fn call_triggered_loss_fails_the_entry_and_drops_pages() {
        use sim_core::fault::FaultPlan;
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let plan: FaultPlan = "enclave_lost@call=2;seed=7".parse().unwrap();
        m.set_fault_plan(Some(&plan));
        let lost_seen = Arc::new(AtomicUsize::new(0));
        let l2 = Arc::clone(&lost_seen);
        m.add_driver_hook(Arc::new(move |ev| {
            if matches!(ev, DriverEvent::EnclaveLost { .. }) {
                l2.fetch_add(1, Ordering::SeqCst);
            }
        }));
        let stages = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&stages);
        m.set_lifecycle_observer(Some(Arc::new(move |ev: &LifecycleEvent| {
            s2.lock().push(ev.stage);
        })));
        // First entry survives; second is the loss.
        m.enter_enclave(eid, ThreadToken::MAIN).unwrap();
        let err = m.enter_enclave(eid, ThreadToken::MAIN).unwrap_err();
        assert_eq!(err, SimError::EnclaveLost(eid));
        assert_eq!(lost_seen.load(Ordering::SeqCst), 1);
        assert_eq!(stages.lock().as_slice(), &[LifecycleStage::Lost]);
        // Pages are gone; the id stays registered but everything fails.
        let info = m.enclave_info(eid).unwrap();
        assert_eq!(info.resident_pages, 0);
        assert!(m.is_lost(eid).unwrap());
        assert_eq!(
            m.enter_enclave(eid, ThreadToken::MAIN),
            Err(SimError::EnclaveLost(eid))
        );
        assert_eq!(
            m.execute_in_enclave(eid, ThreadToken::MAIN, Nanos::from_micros(1)),
            Err(SimError::EnclaveLost(eid))
        );
        let heap = m.heap_range(eid).unwrap();
        assert_eq!(
            m.touch(eid, ThreadToken::MAIN, heap.clone(), AccessKind::Read),
            Err(SimError::EnclaveLost(eid))
        );
        assert_eq!(m.prefetch(eid, heap), Err(SimError::EnclaveLost(eid)));
        // A supervisor can still destroy and rebuild it.
        m.destroy_enclave(eid).unwrap();
        let eid2 = m.create_enclave(&EnclaveConfig::default()).unwrap();
        m.enter_enclave(eid2, ThreadToken::MAIN).unwrap();
    }

    #[test]
    fn time_triggered_loss_unwinds_mid_execution_without_eresume() {
        use sim_core::fault::FaultPlan;
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let plan: FaultPlan = "enclave_lost@t=1us;seed=1".parse().unwrap();
        m.set_fault_plan(Some(&plan));
        let aep_hits = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&aep_hits);
        m.set_aep_observer(Some(Arc::new(move |_: &AexEvent| {
            a2.fetch_add(1, Ordering::SeqCst);
        })));
        m.clock().advance(Nanos::from_micros(2));
        let before = m.clock().now();
        let err = m
            .execute_in_enclave(eid, ThreadToken::MAIN, Nanos::from_micros(100))
            .unwrap_err();
        assert_eq!(err, SimError::EnclaveLost(eid));
        // AEX-style exit: the exit cost is charged but the AEP observer
        // never runs and no ERESUME is charged.
        assert_eq!(m.clock().now() - before, m.cost_model().aex_exit);
        assert_eq!(aep_hits.load(Ordering::SeqCst), 0);
        assert!(m.is_lost(eid).unwrap());
    }

    #[test]
    fn epc_poison_defers_the_loss_to_the_next_entry() {
        use sim_core::fault::FaultPlan;
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let plan: FaultPlan = "epc_poison@call=1;seed=3".parse().unwrap();
        m.set_fault_plan(Some(&plan));
        // The poisoning entry itself succeeds...
        m.enter_enclave(eid, ThreadToken::MAIN).unwrap();
        assert!(!m.is_lost(eid).unwrap());
        m.execute_in_enclave(eid, ThreadToken::MAIN, Nanos::from_micros(5))
            .unwrap();
        // ...the next one finds the enclave lost.
        assert_eq!(
            m.enter_enclave(eid, ThreadToken::MAIN),
            Err(SimError::EnclaveLost(eid))
        );
        assert!(m.is_lost(eid).unwrap());
    }

    #[test]
    fn out_of_range_page_rejected() {
        let m = machine();
        let eid = m.create_enclave(&EnclaveConfig::default()).unwrap();
        let total = m.enclave_info(eid).unwrap().total_pages;
        let err = m
            .touch(eid, ThreadToken::MAIN, total..total + 1, AccessKind::Read)
            .unwrap_err();
        assert!(matches!(err, SimError::PageOutOfRange { .. }));
    }
}
