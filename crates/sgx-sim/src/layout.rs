//! Enclave memory layout.
//!
//! Mirrors §2.3.3: an enclave consists of one metadata page, its code and
//! data, the heap, and — per configured thread — a TCS page, SSA pages, a
//! stack and guard pages. Heap and stack sizes are fixed at build time via
//! the enclave configuration, and the total size is rounded up to a power of
//! two with padding pages (which are part of the measurement but normally
//! never accessed — §4.2).

use std::ops::Range;

use crate::page::Perms;

/// Size of one page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Number of SSA (State Save Area) pages per thread.
const SSA_PAGES_PER_THREAD: usize = 2;

/// What a given enclave page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// The SECS-like metadata page (size, measurement, attributes).
    Metadata,
    /// Thread Control Structure: one per configured enclave thread.
    Tcs,
    /// State Save Area used on asynchronous exits.
    Ssa,
    /// Executable enclave code.
    Code,
    /// Initialised global data.
    Data,
    /// Enclave heap.
    Heap,
    /// Per-thread stack.
    Stack,
    /// Guard page (never mapped accessible).
    Guard,
    /// Padding up to the power-of-two enclave size.
    Padding,
}

impl PageKind {
    /// The MMU permissions this page kind naturally carries.
    pub fn natural_perms(self) -> Perms {
        match self {
            PageKind::Code => Perms::RX,
            PageKind::Tcs | PageKind::Ssa | PageKind::Data | PageKind::Heap | PageKind::Stack => {
                Perms::RW
            }
            PageKind::Metadata | PageKind::Guard | PageKind::Padding => Perms::NONE,
        }
    }

    /// Whether the page is ever legitimately touched during execution.
    pub fn is_accessible(self) -> bool {
        !self.natural_perms().is_none()
    }
}

/// Build-time enclave configuration — the analogue of the SDK's enclave
/// configuration XML (heap size, stack size, TCS number) plus code/data
/// sizes that in reality come from the enclave binary.
///
/// # Examples
///
/// ```
/// use sgx_sim::{EnclaveConfig, EnclaveLayout};
///
/// let config = EnclaveConfig {
///     heap_kib: 512,
///     tcs_count: 4,
///     ..EnclaveConfig::default()
/// };
/// let layout = EnclaveLayout::new(&config);
/// assert!(layout.total_pages().is_power_of_two());
/// assert_eq!(layout.tcs_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveConfig {
    /// Size of the code section in KiB.
    pub code_kib: usize,
    /// Size of the initialised data section in KiB.
    pub data_kib: usize,
    /// Heap size in KiB.
    pub heap_kib: usize,
    /// Stack size per thread in KiB.
    pub stack_kib: usize,
    /// Number of TCSs = maximum concurrent threads inside the enclave.
    pub tcs_count: usize,
    /// Whether the enclave is a debug enclave (inspectable by tooling).
    pub debug: bool,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            code_kib: 64,
            data_kib: 16,
            heap_kib: 256,
            stack_kib: 64,
            tcs_count: 1,
            debug: true,
        }
    }
}

impl EnclaveConfig {
    fn pages(kib: usize) -> usize {
        (kib * 1024).div_ceil(PAGE_SIZE)
    }

    /// A stand-in for the enclave measurement (MRENCLAVE): an FNV-1a hash of
    /// the layout-determining fields. Two enclaves built from the same
    /// configuration have the same measurement.
    pub fn measurement(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for v in [
            self.code_kib,
            self.data_kib,
            self.heap_kib,
            self.stack_kib,
            self.tcs_count,
            usize::from(self.debug),
        ] {
            h ^= v as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// The concrete page map of an enclave built from an [`EnclaveConfig`].
#[derive(Debug, Clone)]
pub struct EnclaveLayout {
    kinds: Vec<PageKind>,
    code: Range<usize>,
    data: Range<usize>,
    heap: Range<usize>,
    /// Per-thread (tcs_page, ssa_range, stack_range).
    threads: Vec<ThreadPages>,
    measurement: u64,
}

/// Page indices belonging to one enclave thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPages {
    /// Index of the TCS page.
    pub tcs: usize,
    /// SSA page range.
    pub ssa: Range<usize>,
    /// Stack page range (excluding guards).
    pub stack: Range<usize>,
}

impl EnclaveLayout {
    /// Computes the layout for a configuration.
    pub fn new(config: &EnclaveConfig) -> EnclaveLayout {
        let mut kinds = vec![PageKind::Metadata];
        let push_range = |kinds: &mut Vec<PageKind>, kind: PageKind, n: usize| -> Range<usize> {
            let start = kinds.len();
            kinds.extend(std::iter::repeat_n(kind, n));
            start..kinds.len()
        };
        let code = push_range(
            &mut kinds,
            PageKind::Code,
            EnclaveConfig::pages(config.code_kib),
        );
        let data = push_range(
            &mut kinds,
            PageKind::Data,
            EnclaveConfig::pages(config.data_kib),
        );
        let heap = push_range(
            &mut kinds,
            PageKind::Heap,
            EnclaveConfig::pages(config.heap_kib),
        );
        let mut threads = Vec::with_capacity(config.tcs_count);
        for _ in 0..config.tcs_count {
            let tcs = kinds.len();
            kinds.push(PageKind::Tcs);
            let ssa = push_range(&mut kinds, PageKind::Ssa, SSA_PAGES_PER_THREAD);
            kinds.push(PageKind::Guard);
            let stack = push_range(
                &mut kinds,
                PageKind::Stack,
                EnclaveConfig::pages(config.stack_kib),
            );
            kinds.push(PageKind::Guard);
            threads.push(ThreadPages { tcs, ssa, stack });
        }
        let total = kinds.len().next_power_of_two();
        kinds.resize(total, PageKind::Padding);
        EnclaveLayout {
            kinds,
            code,
            data,
            heap,
            threads,
            measurement: config.measurement(),
        }
    }

    /// Total number of pages including padding; always a power of two.
    pub fn total_pages(&self) -> usize {
        self.kinds.len()
    }

    /// Total enclave size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_pages() * PAGE_SIZE
    }

    /// The kind of page `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn kind(&self, index: usize) -> PageKind {
        self.kinds[index]
    }

    /// Iterator over all page kinds in layout order.
    pub fn iter(&self) -> impl Iterator<Item = PageKind> + '_ {
        self.kinds.iter().copied()
    }

    /// Page range of the code section.
    pub fn code_range(&self) -> Range<usize> {
        self.code.clone()
    }

    /// Page range of the data section.
    pub fn data_range(&self) -> Range<usize> {
        self.data.clone()
    }

    /// Page range of the heap.
    pub fn heap_range(&self) -> Range<usize> {
        self.heap.clone()
    }

    /// Per-thread page assignments.
    pub fn thread_pages(&self) -> &[ThreadPages] {
        &self.threads
    }

    /// Number of TCSs (maximum concurrent enclave threads).
    pub fn tcs_count(&self) -> usize {
        self.threads.len()
    }

    /// The enclave measurement.
    pub fn measurement(&self) -> u64 {
        self.measurement
    }

    /// Pages that are legitimately accessible (everything but guards,
    /// padding and the metadata page).
    pub fn accessible_pages(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_accessible()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_power_of_two() {
        let layout = EnclaveLayout::new(&EnclaveConfig::default());
        assert!(layout.total_pages().is_power_of_two());
        assert_eq!(layout.kind(0), PageKind::Metadata);
    }

    #[test]
    fn regions_do_not_overlap() {
        let config = EnclaveConfig {
            tcs_count: 3,
            ..EnclaveConfig::default()
        };
        let layout = EnclaveLayout::new(&config);
        let mut seen = vec![false; layout.total_pages()];
        let mut claim = |range: Range<usize>| {
            for i in range {
                assert!(!seen[i], "page {i} claimed twice");
                seen[i] = true;
            }
        };
        claim(layout.code_range());
        claim(layout.data_range());
        claim(layout.heap_range());
        for t in layout.thread_pages() {
            claim(t.tcs..t.tcs + 1);
            claim(t.ssa.clone());
            claim(t.stack.clone());
        }
    }

    #[test]
    fn thread_pages_match_config() {
        let config = EnclaveConfig {
            stack_kib: 8,
            tcs_count: 2,
            ..EnclaveConfig::default()
        };
        let layout = EnclaveLayout::new(&config);
        assert_eq!(layout.tcs_count(), 2);
        for t in layout.thread_pages() {
            assert_eq!(layout.kind(t.tcs), PageKind::Tcs);
            assert_eq!(t.stack.len(), 2); // 8 KiB = 2 pages
                                          // Stacks are bracketed by guard pages.
            assert_eq!(layout.kind(t.stack.start - 1), PageKind::Guard);
            assert_eq!(layout.kind(t.stack.end), PageKind::Guard);
        }
    }

    #[test]
    fn padding_fills_to_power_of_two() {
        let layout = EnclaveLayout::new(&EnclaveConfig::default());
        let padding = layout.iter().filter(|k| *k == PageKind::Padding).count();
        let non_padding = layout.total_pages() - padding;
        assert!(non_padding <= layout.total_pages());
        assert!(layout.total_pages() < non_padding * 2 || layout.total_pages() == 1);
    }

    #[test]
    fn measurement_is_stable_and_config_sensitive() {
        let a = EnclaveConfig::default();
        let b = EnclaveConfig {
            heap_kib: a.heap_kib + 4,
            ..a.clone()
        };
        assert_eq!(a.measurement(), EnclaveConfig::default().measurement());
        assert_ne!(a.measurement(), b.measurement());
        assert_eq!(EnclaveLayout::new(&a).measurement(), a.measurement());
    }

    #[test]
    fn accessible_pages_excludes_guards_and_padding() {
        let layout = EnclaveLayout::new(&EnclaveConfig::default());
        let guards_padding_meta = layout
            .iter()
            .filter(|k| matches!(k, PageKind::Guard | PageKind::Padding | PageKind::Metadata))
            .count();
        assert_eq!(
            layout.accessible_pages() + guards_padding_meta,
            layout.total_pages()
        );
    }
}
