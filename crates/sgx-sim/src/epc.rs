//! The Enclave Page Cache.
//!
//! Current SGX implementations reserve 128 MiB of system memory for the EPC
//! of which ≈93 MiB are usable for enclave pages; the rest holds integrity
//! metadata (§2.3.3). The EPC is shared between *all* running enclaves.
//! When it is full, the driver evicts pages to untrusted memory, which is
//! expensive (re-encryption + extra transitions).
//!
//! This module models only occupancy and the eviction decision; costs and
//! event delivery live in [`machine`](crate::machine).
//!
//! All bookkeeping is indexed so the structure scales to fleets of
//! thousands of enclaves: victim selection is the first entry of a stamp
//! BTreeMap (O(log n)) and per-enclave teardown walks only that enclave's
//! resident set instead of scanning every resident page.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::machine::EnclaveId;

/// Usable EPC capacity in pages: 93 MiB / 4 KiB.
pub const DEFAULT_EPC_PAGES: usize = 93 * 256;

/// Which page the driver evicts when the EPC is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Evict the page that has been resident longest (insertion order) —
    /// approximates the Linux SGX driver's simple reclaim behaviour.
    #[default]
    Fifo,
    /// Evict the least recently *accessed* page.
    Lru,
}

pub(crate) type PageKey = (EnclaveId, usize);

/// Occupancy tracker for the EPC.
#[derive(Debug)]
pub(crate) struct Epc {
    capacity: usize,
    policy: EvictionPolicy,
    /// stamp -> page, ordered oldest first.
    by_stamp: BTreeMap<u64, PageKey>,
    /// page -> stamp.
    stamps: HashMap<PageKey, u64>,
    /// enclave -> resident page indices, so per-enclave teardown does not
    /// scan the whole EPC (fleet-scale destroy/rebuild churn).
    per_enclave: HashMap<EnclaveId, BTreeSet<usize>>,
    next_stamp: u64,
}

impl Epc {
    pub fn new(capacity: usize, policy: EvictionPolicy) -> Epc {
        assert!(capacity > 0, "EPC capacity must be positive");
        Epc {
            capacity,
            policy,
            by_stamp: BTreeMap::new(),
            stamps: HashMap::new(),
            per_enclave: HashMap::new(),
            next_stamp: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn resident_count(&self) -> usize {
        self.stamps.len()
    }

    /// How many of `enclave`'s pages are currently resident. O(1).
    pub fn resident_of(&self, enclave: EnclaveId) -> usize {
        self.per_enclave.get(&enclave).map_or(0, BTreeSet::len)
    }

    pub fn contains(&self, key: PageKey) -> bool {
        self.stamps.contains_key(&key)
    }

    /// Makes `key` resident. If the EPC is full, returns the victim that
    /// must be evicted first (the caller performs the eviction bookkeeping
    /// and then calls `insert` again — by then there is room).
    ///
    /// Returns `None` once the page is resident.
    pub fn insert(&mut self, key: PageKey) -> Option<PageKey> {
        if self.stamps.contains_key(&key) {
            return None;
        }
        if self.stamps.len() >= self.capacity {
            let (&stamp, &victim) = self
                .by_stamp
                .iter()
                .next()
                .expect("EPC full implies non-empty");
            self.by_stamp.remove(&stamp);
            self.stamps.remove(&victim);
            self.unindex(victim);
            // Caller records the eviction, then the new page goes in below.
            self.insert_fresh(key);
            return Some(victim);
        }
        self.insert_fresh(key);
        None
    }

    fn insert_fresh(&mut self, key: PageKey) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.by_stamp.insert(stamp, key);
        self.stamps.insert(key, stamp);
        self.per_enclave.entry(key.0).or_default().insert(key.1);
    }

    fn unindex(&mut self, key: PageKey) {
        if let Some(set) = self.per_enclave.get_mut(&key.0) {
            set.remove(&key.1);
            if set.is_empty() {
                self.per_enclave.remove(&key.0);
            }
        }
    }

    /// Records an access for LRU bookkeeping. No-op under FIFO.
    pub fn touch(&mut self, key: PageKey) {
        if self.policy != EvictionPolicy::Lru {
            return;
        }
        if let Some(stamp) = self.stamps.get(&key).copied() {
            self.by_stamp.remove(&stamp);
            // Re-stamp only; the per-enclave index already holds the page,
            // and insert_fresh's BTreeSet insert of an existing element is
            // a no-op, so going through it keeps one code path.
            self.insert_fresh(key);
        }
    }

    /// Removes a single page (e.g. explicit eviction).
    pub fn remove(&mut self, key: PageKey) -> bool {
        match self.stamps.remove(&key) {
            Some(stamp) => {
                self.by_stamp.remove(&stamp);
                self.unindex(key);
                true
            }
            None => false,
        }
    }

    /// Removes every page of an enclave; returns how many were resident.
    /// Proportional to that enclave's resident set, not total occupancy.
    pub fn remove_enclave(&mut self, enclave: EnclaveId) -> usize {
        let Some(pages) = self.per_enclave.remove(&enclave) else {
            return 0;
        };
        let mut removed = 0;
        for page in pages {
            if let Some(stamp) = self.stamps.remove(&(enclave, page)) {
                self.by_stamp.remove(&stamp);
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eid(n: u32) -> EnclaveId {
        EnclaveId(n)
    }

    #[test]
    fn fills_to_capacity_without_eviction() {
        let mut epc = Epc::new(4, EvictionPolicy::Fifo);
        for i in 0..4 {
            assert_eq!(epc.insert((eid(1), i)), None);
        }
        assert_eq!(epc.resident_count(), 4);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut epc = Epc::new(2, EvictionPolicy::Fifo);
        epc.insert((eid(1), 0));
        epc.insert((eid(1), 1));
        // Access page 0 — FIFO must ignore it.
        epc.touch((eid(1), 0));
        let victim = epc.insert((eid(1), 2));
        assert_eq!(victim, Some((eid(1), 0)));
        assert!(epc.contains((eid(1), 2)));
        assert!(!epc.contains((eid(1), 0)));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut epc = Epc::new(2, EvictionPolicy::Lru);
        epc.insert((eid(1), 0));
        epc.insert((eid(1), 1));
        epc.touch((eid(1), 0)); // page 1 is now the LRU victim
        let victim = epc.insert((eid(1), 2));
        assert_eq!(victim, Some((eid(1), 1)));
    }

    #[test]
    fn double_insert_is_idempotent() {
        let mut epc = Epc::new(2, EvictionPolicy::Fifo);
        assert_eq!(epc.insert((eid(1), 0)), None);
        assert_eq!(epc.insert((eid(1), 0)), None);
        assert_eq!(epc.resident_count(), 1);
    }

    #[test]
    fn remove_enclave_clears_only_that_enclave() {
        let mut epc = Epc::new(8, EvictionPolicy::Fifo);
        for i in 0..3 {
            epc.insert((eid(1), i));
        }
        epc.insert((eid(2), 0));
        assert_eq!(epc.remove_enclave(eid(1)), 3);
        assert_eq!(epc.resident_count(), 1);
        assert!(epc.contains((eid(2), 0)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Epc::new(0, EvictionPolicy::Fifo);
    }

    #[test]
    fn eviction_pressure_across_enclaves() {
        // Two enclaves sharing a tiny EPC evict each other's pages — the
        // multi-tenant scenario from §3.5.
        let mut epc = Epc::new(3, EvictionPolicy::Fifo);
        epc.insert((eid(1), 0));
        epc.insert((eid(1), 1));
        epc.insert((eid(2), 0));
        assert_eq!(epc.insert((eid(2), 1)), Some((eid(1), 0)));
        assert_eq!(epc.insert((eid(1), 0)), Some((eid(1), 1)));
    }

    #[test]
    fn per_enclave_index_tracks_evictions_and_removals() {
        let mut epc = Epc::new(3, EvictionPolicy::Fifo);
        epc.insert((eid(1), 0));
        epc.insert((eid(1), 1));
        epc.insert((eid(2), 0));
        assert_eq!(epc.resident_of(eid(1)), 2);
        assert_eq!(epc.resident_of(eid(2)), 1);
        // Eviction of enclave 1's oldest page must drop its index entry.
        assert_eq!(epc.insert((eid(2), 1)), Some((eid(1), 0)));
        assert_eq!(epc.resident_of(eid(1)), 1);
        assert_eq!(epc.resident_of(eid(2)), 2);
        // Explicit removal keeps the index consistent too.
        assert!(epc.remove((eid(1), 1)));
        assert_eq!(epc.resident_of(eid(1)), 0);
        // LRU touch of a resident page must not double-count it.
        let mut lru = Epc::new(4, EvictionPolicy::Lru);
        lru.insert((eid(3), 0));
        lru.touch((eid(3), 0));
        assert_eq!(lru.resident_of(eid(3)), 1);
        assert_eq!(lru.remove_enclave(eid(3)), 1);
        assert_eq!(lru.resident_of(eid(3)), 0);
    }
}
