//! Page permissions and per-page state.

use std::fmt;

use crate::layout::PageKind;

/// MMU page permissions (the OS-controlled page-table bits, *not* the SGX
/// EPCM permissions, which are fixed at enclave creation in SGX v1).
///
/// The working-set estimator works by stripping these and catching the
/// resulting access faults; SGX permissions are checked second and remain
/// intact (§4.2).
///
/// # Examples
///
/// ```
/// use sgx_sim::Perms;
///
/// let rw = Perms::READ | Perms::WRITE;
/// assert!(rw.allows(Perms::READ));
/// assert!(!rw.allows(Perms::EXEC));
/// assert_eq!(rw.to_string(), "rw-");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Read access.
    pub const READ: Perms = Perms(1);
    /// Write access.
    pub const WRITE: Perms = Perms(2);
    /// Execute access.
    pub const EXEC: Perms = Perms(4);
    /// Read + write.
    pub const RW: Perms = Perms(3);
    /// Read + execute.
    pub const RX: Perms = Perms(5);

    /// Whether every permission bit in `needed` is present.
    pub const fn allows(self, needed: Perms) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Whether no permission bit is set.
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl std::ops::BitAnd for Perms {
    type Output = Perms;
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.allows(Perms::READ) { 'r' } else { '-' },
            if self.allows(Perms::WRITE) { 'w' } else { '-' },
            if self.allows(Perms::EXEC) { 'x' } else { '-' },
        )
    }
}

/// State of one enclave page inside the simulated machine.
#[derive(Debug, Clone)]
pub(crate) struct PageState {
    pub kind: PageKind,
    /// Whether the page currently lives in the EPC (vs. swapped out).
    pub resident: bool,
    /// Current MMU permissions.
    pub mmu_perms: Perms,
    /// The natural permissions for this page kind, restored after a
    /// working-set fault.
    pub natural_perms: Perms,
    /// How many times the page has been accessed (any kind).
    pub access_count: u64,
}

impl PageState {
    pub fn new(kind: PageKind) -> PageState {
        let natural = kind.natural_perms();
        PageState {
            kind,
            resident: false,
            mmu_perms: natural,
            natural_perms: natural,
            access_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_combination() {
        let p = Perms::READ | Perms::EXEC;
        assert_eq!(p, Perms::RX);
        assert!(p.allows(Perms::READ));
        assert!(p.allows(Perms::EXEC));
        assert!(!p.allows(Perms::WRITE));
        assert!(!p.allows(Perms::RW));
    }

    #[test]
    fn none_allows_nothing_but_none() {
        assert!(Perms::NONE.is_none());
        assert!(Perms::NONE.allows(Perms::NONE));
        assert!(!Perms::NONE.allows(Perms::READ));
    }

    #[test]
    fn display_is_unix_style() {
        assert_eq!(Perms::NONE.to_string(), "---");
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!((Perms::RW | Perms::EXEC).to_string(), "rwx");
    }

    #[test]
    fn page_state_starts_non_resident_with_natural_perms() {
        let st = PageState::new(PageKind::Heap);
        assert!(!st.resident);
        assert_eq!(st.mmu_perms, Perms::RW);
        assert_eq!(st.access_count, 0);
    }
}
