//! Observable hardware/driver events.
//!
//! These are the event types sgx-perf's logger subscribes to: AEXs via the
//! patched AEP (§4.1.4), paging via kprobe-style driver hooks (§4.1.5) and
//! MMU access faults via the working-set estimator's fault handler (§4.2).

use sim_core::Nanos;

use crate::machine::{EnclaveId, ThreadToken};

/// Why an asynchronous enclave exit happened.
///
/// SGX v1 cannot report the AEX cause to user space (§4.1.4); the simulated
/// machine knows it, and exposes it so tests can verify behaviour, but the
/// logger deliberately ignores it for v1 fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AexCause {
    /// Timer interrupt hit while executing inside the enclave.
    Interrupt,
    /// EPC page fault (page had been evicted).
    PageFault,
    /// MMU access fault (permissions stripped, e.g. by the working-set
    /// estimator).
    AccessFault,
}

/// One asynchronous enclave exit, delivered to the AEP observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AexEvent {
    /// Enclave that was interrupted.
    pub enclave: EnclaveId,
    /// Logical thread executing inside the enclave.
    pub thread: ThreadToken,
    /// Virtual time of the exit.
    pub time: Nanos,
    /// The cause (not observable on real SGX v1 hardware).
    pub cause: AexCause,
}

/// Direction of an EPC paging operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagingDirection {
    /// Page evicted from the EPC to untrusted memory (`EWB`).
    Out,
    /// Page loaded back into the EPC (`ELDU`).
    In,
}

/// Kernel-driver events — what a kprobe on the SGX driver's paging functions
/// would observe, plus enclave lifecycle for bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverEvent {
    /// A page crossed the EPC boundary.
    Paging {
        /// Direction of travel.
        direction: PagingDirection,
        /// Owning enclave.
        enclave: EnclaveId,
        /// Virtual address of the page.
        vaddr: u64,
        /// Virtual time of the operation.
        time: Nanos,
    },
    /// An enclave was created (`ECREATE`+`EADD`+`EINIT`).
    EnclaveCreated {
        /// New enclave id.
        enclave: EnclaveId,
        /// Total size in pages (power of two).
        pages: usize,
        /// Virtual time of creation.
        time: Nanos,
    },
    /// An enclave was destroyed and its EPC pages freed.
    EnclaveDestroyed {
        /// Destroyed enclave id.
        enclave: EnclaveId,
        /// Virtual time of destruction.
        time: Nanos,
    },
    /// An enclave was *lost*: its EPC contents were destroyed by a power
    /// transition or machine check. The enclave id stays registered, but
    /// every subsequent EENTER/ERESUME fails until it is rebuilt.
    EnclaveLost {
        /// Lost enclave id.
        enclave: EnclaveId,
        /// Virtual time of the loss.
        time: Nanos,
    },
}

/// An MMU access fault caused by stripped page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuFault {
    /// Faulting enclave.
    pub enclave: EnclaveId,
    /// Logical thread that faulted.
    pub thread: ThreadToken,
    /// Index of the faulting page within the enclave.
    pub page_index: usize,
    /// Virtual address of the faulting page.
    pub vaddr: u64,
    /// Virtual time of the fault.
    pub time: Nanos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_value_types() {
        let e = DriverEvent::Paging {
            direction: PagingDirection::Out,
            enclave: EnclaveId(1),
            vaddr: 0x1000,
            time: Nanos::from_nanos(7),
        };
        let copy = e;
        assert_eq!(e, copy);
    }
}
