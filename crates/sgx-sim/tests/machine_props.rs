//! Property tests of the machine's EPC bookkeeping: under arbitrary
//! sequences of enclave lifecycle and memory operations, the per-page
//! residency flags and the EPC occupancy map must never disagree.
//!
//! (This invariant is exactly what a real bug in enclave creation once
//! violated: pages evicted during their own enclave's creation stayed
//! flagged resident.)

use proptest::prelude::*;
use sgx_sim::{
    AccessKind, EnclaveConfig, EnclaveId, EvictionPolicy, Machine, MachineParams, SgxVersion,
    ThreadToken,
};
use sim_core::{Clock, HwProfile};

#[derive(Debug, Clone)]
enum Op {
    Create {
        heap_kib: usize,
    },
    TouchHeap {
        enclave: usize,
        offset: usize,
        len: usize,
    },
    Prefetch {
        enclave: usize,
        offset: usize,
        len: usize,
    },
    EvictAll {
        enclave: usize,
    },
    ExtendHeap {
        enclave: usize,
        pages: usize,
    },
    Destroy {
        enclave: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (8usize..256).prop_map(|heap_kib| Op::Create { heap_kib }),
        (any::<usize>(), 0usize..64, 1usize..16).prop_map(|(enclave, offset, len)| Op::TouchHeap {
            enclave,
            offset,
            len
        }),
        (any::<usize>(), 0usize..64, 1usize..16).prop_map(|(enclave, offset, len)| Op::Prefetch {
            enclave,
            offset,
            len
        }),
        any::<usize>().prop_map(|enclave| Op::EvictAll { enclave }),
        (any::<usize>(), 1usize..8).prop_map(|(enclave, pages)| Op::ExtendHeap { enclave, pages }),
        any::<usize>().prop_map(|enclave| Op::Destroy { enclave }),
    ]
}

fn check_invariants(machine: &Machine, live: &[EnclaveId]) {
    // 1. EPC never over-full.
    assert!(machine.epc_resident() <= machine.epc_capacity());
    // 2. Per-page flags agree with the EPC occupancy map, page by page
    //    and in total.
    let mut flagged_total = 0;
    for &eid in live {
        let info = machine.enclave_info(eid).expect("live enclave");
        flagged_total += info.resident_pages;
        let mut in_epc = 0;
        for page in 0..info.total_pages {
            if machine.is_resident(eid, page).expect("valid page") {
                in_epc += 1;
            }
        }
        assert_eq!(
            info.resident_pages, in_epc,
            "{eid}: flags say {} resident, EPC holds {in_epc}",
            info.resident_pages
        );
    }
    assert_eq!(flagged_total, machine.epc_resident());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn epc_and_page_flags_never_disagree(
        ops in proptest::collection::vec(arb_op(), 1..40),
        epc_pages in 64usize..512,
        lru in any::<bool>(),
    ) {
        let machine = Machine::with_params(
            Clock::new(),
            HwProfile::Unpatched,
            MachineParams {
                epc_pages,
                eviction: if lru { EvictionPolicy::Lru } else { EvictionPolicy::Fifo },
                sgx_version: SgxVersion::V2,
                ..MachineParams::default()
            },
        );
        let mut live: Vec<EnclaveId> = Vec::new();
        for op in ops {
            match op {
                Op::Create { heap_kib } => {
                    let eid = machine
                        .create_enclave(&EnclaveConfig {
                            heap_kib,
                            ..EnclaveConfig::default()
                        })
                        .unwrap();
                    live.push(eid);
                }
                Op::TouchHeap { enclave, offset, len } if !live.is_empty() => {
                    let eid = live[enclave % live.len()];
                    let heap = machine.heap_range(eid).unwrap();
                    let start = heap.start + offset.min(heap.len().saturating_sub(1));
                    let end = (start + len).min(heap.end);
                    if start < end {
                        machine
                            .touch(eid, ThreadToken::MAIN, start..end, AccessKind::Write)
                            .unwrap();
                    }
                }
                Op::Prefetch { enclave, offset, len } if !live.is_empty() => {
                    let eid = live[enclave % live.len()];
                    let heap = machine.heap_range(eid).unwrap();
                    let start = heap.start + offset.min(heap.len().saturating_sub(1));
                    let end = (start + len).min(heap.end);
                    if start < end {
                        machine.prefetch(eid, start..end).unwrap();
                    }
                }
                Op::EvictAll { enclave } if !live.is_empty() => {
                    let eid = live[enclave % live.len()];
                    machine.evict_all(eid).unwrap();
                }
                Op::ExtendHeap { enclave, pages } if !live.is_empty() => {
                    let eid = live[enclave % live.len()];
                    // May legitimately run out of padding reserve.
                    let _ = machine.extend_heap(eid, pages);
                }
                Op::Destroy { enclave } if !live.is_empty() => {
                    let eid = live.remove(enclave % live.len());
                    machine.destroy_enclave(eid).unwrap();
                }
                _ => {}
            }
            check_invariants(&machine, &live);
        }
    }

    /// Touching any accessible page always leaves it resident, regardless
    /// of prior eviction history.
    #[test]
    fn touched_pages_end_up_resident(
        epc_pages in 48usize..128,
        touches in proptest::collection::vec((0usize..64, 1usize..8), 1..20),
    ) {
        let machine = Machine::with_params(
            Clock::new(),
            HwProfile::Unpatched,
            MachineParams {
                epc_pages,
                ..MachineParams::default()
            },
        );
        let eid = machine
            .create_enclave(&EnclaveConfig {
                heap_kib: 512, // bigger than any tested EPC
                ..EnclaveConfig::default()
            })
            .unwrap();
        let heap = machine.heap_range(eid).unwrap();
        for (offset, len) in touches {
            let start = heap.start + offset.min(heap.len() - 1);
            let end = (start + len).min(heap.end);
            machine
                .touch(eid, ThreadToken::MAIN, start..end, AccessKind::Read)
                .unwrap();
            for page in start..end {
                prop_assert!(machine.is_resident(eid, page).unwrap());
            }
        }
    }
}
