//! Shared helpers for the table/figure regeneration benches.
//!
//! Every `[[bench]]` target in this crate is a `harness = false` binary
//! that re-runs one experiment of the paper's evaluation (§2.3.1, §5) on
//! the simulated SGX stack and prints the corresponding table rows or
//! figure series. `cargo bench -p sgx-perf-bench` regenerates everything;
//! see EXPERIMENTS.md for the paper-vs-measured record.

use std::time::Instant;

use sim_core::Nanos;

/// Scale factor for run lengths, settable via `SGX_PERF_BENCH_SCALE`
/// (e.g. `0.1` for a quick smoke run, `1.0` for paper-length runs).
pub fn scale() -> f64 {
    std::env::var("SGX_PERF_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2)
}

/// A virtual duration scaled by [`scale`].
pub fn scaled_duration(full: Nanos) -> Nanos {
    full.scale(scale())
}

/// A count scaled by [`scale`], at least `min`.
pub fn scaled_count(full: u64, min: u64) -> u64 {
    ((full as f64 * scale()) as u64).max(min)
}

/// Prints a banner for one experiment.
pub fn banner(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Prints one key/value result row.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<58} {value}");
}

/// Runs `f`, printing how much real (host) time the experiment took.
pub fn timed_real<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let value = f();
    println!(
        "  [{label}: {:.1}s real time]",
        start.elapsed().as_secs_f64()
    );
    value
}

/// Formats a ratio as the paper does (`0.57x`).
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_count_respects_minimum() {
        assert!(scaled_count(10, 100) >= 100);
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(0.5678), "0.57x");
    }
}
