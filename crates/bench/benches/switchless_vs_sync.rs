//! E10: switchless calls vs synchronous transitions vs the no-worker
//! fallback, per hardware profile — plus the full sgx-perf
//! detect → apply → re-measure loop.
//!
//! The workload is the hot-short-ocall request server of
//! `workloads::switchless_loop` (HotCalls shape: one medium ecall per
//! request, four sub-microsecond logging ocalls inside it). The expected
//! ordering is sync > fallback ≈ sync > switchless, with the switchless
//! saving growing alongside the mitigation level's transition cost.

use sgx_perf_bench::{banner, ratio, row, scaled_count};
use sgx_sdk::SwitchlessConfig;
use sim_core::HwProfile;
use workloads::switchless_loop::{closed_loop, run};
use workloads::Harness;

fn per_request(profile: HwProfile, requests: u64, config: Option<SwitchlessConfig>) -> f64 {
    let harness = Harness::new(profile);
    let result = run(&harness, requests, config).expect("switchless workload");
    result.stats.per_op().as_nanos() as f64
}

fn switchless(workers: usize) -> SwitchlessConfig {
    SwitchlessConfig {
        untrusted_workers: workers,
        force_ocalls: vec!["ocall_log".to_string()],
        ..SwitchlessConfig::default()
    }
}

fn main() {
    let requests = scaled_count(5_000, 200);

    banner(
        "E10a",
        "per-request cost: synchronous vs switchless vs no-worker fallback",
    );
    println!(
        "  {:<16} {:>12} {:>14} {:>12} {:>10}",
        "setting", "sync", "switchless", "fallback", "saving"
    );
    for profile in HwProfile::ALL {
        let sync_ns = per_request(profile, requests, None);
        let sw_ns = per_request(profile, requests, Some(switchless(1)));
        let fb_ns = per_request(profile, requests, Some(switchless(0)));
        println!(
            "  {:<16} {:>10.0}ns {:>12.0}ns {:>10.0}ns {:>10}",
            profile.label(),
            sync_ns,
            sw_ns,
            fb_ns,
            ratio(sync_ns / sw_ns),
        );
        assert!(
            (fb_ns - sync_ns).abs() < f64::EPSILON,
            "the fallback must cost exactly the synchronous path"
        );
    }
    row(
        "model",
        "switchless saves the ocall transition (~3.6us unpatched) minus ring costs",
    );

    banner(
        "E10b",
        "closed loop: record -> detect UseSwitchless -> apply via config -> re-measure",
    );
    println!(
        "  {:<16} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "setting", "transitions", "after", "dispatched", "fallbacks", "speedup"
    );
    for profile in HwProfile::ALL {
        let l = closed_loop(profile, requests).expect("closed loop");
        assert_eq!(
            l.recommended_ocalls,
            vec!["ocall_log".to_string()],
            "the analyzer must recommend the hot ocall"
        );
        println!(
            "  {:<16} {:>12} {:>12} {:>12} {:>12} {:>10}",
            profile.label(),
            l.transitions_before,
            l.transitions_after,
            l.switchless_dispatched,
            l.switchless_fallbacks,
            ratio(l.speedup()),
        );
    }
    row(
        "loop",
        "applied purely through SwitchlessConfig force lists; workload untouched",
    );
}
