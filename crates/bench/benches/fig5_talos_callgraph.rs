//! E3 (§5.2.1 + Figure 5): nginx + TaLoS under 1000 HTTPS GET requests.
//!
//! Paper: interface of 207 ecalls / 61 ocalls of which 61 and 10 were
//! called, 27,631 ecall and 28,969 ocall events; 60.78% of ecalls and
//! 73.69% of ocalls shorter than 10 µs; the call graph (Figure 5) shows
//! the error-queue ecalls and per-chunk read/write ocalls. Verdict: the
//! OpenSSL interface is unsuitable as an enclave interface.

use sgx_perf::{Analyzer, CallKind, Logger, LoggerConfig};
use sgx_perf_bench::{banner, row, scaled_count, timed_real};
use sim_core::HwProfile;
use workloads::talos::{run, TalosConfig};
use workloads::Harness;

fn main() {
    banner("E3", "TaLoS + nginx call behaviour (Figure 5, §5.2.1)");
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let config = TalosConfig {
        requests: scaled_count(1_000, 200),
        ..TalosConfig::default()
    };
    let result = timed_real("workload", || run(&harness, &config).unwrap());
    let trace = logger.finish();
    let analyzer = Analyzer::new(&trace, harness.profile().cost_model());
    let report = analyzer.analyze();

    row("requests served", result.stats.operations);
    row(
        "interface (ecalls/ocalls declared)",
        "207 / 61 (paper: 207 / 61)".to_string(),
    );
    row(
        "distinct calls traced (ecalls/ocalls)",
        format!(
            "{} / {} (paper: 61 / 10)",
            report.totals.distinct_ecalls, report.totals.distinct_ocalls
        ),
    );
    row(
        "events (ecalls/ocalls)",
        format!(
            "{} / {} (paper @1000 reqs: 27,631 / 28,969)",
            report.totals.ecall_events, report.totals.ocall_events
        ),
    );
    row(
        "share of ecalls < 10us",
        format!(
            "{:.2}% (paper: 60.78%)",
            report.short_fraction(CallKind::Ecall) * 100.0
        ),
    );
    row(
        "share of ocalls < 10us",
        format!(
            "{:.2}% (paper: 73.69%)",
            report.short_fraction(CallKind::Ocall) * 100.0
        ),
    );

    // Interface-tax breakdown: how much traced time the error-queue
    // ecalls (the paper's main complaint) and the socket ocalls eat.
    let err_share: f64 = [
        "ecall_SSL_get_error",
        "ecall_ERR_peek_error",
        "ecall_ERR_clear_error",
    ]
    .iter()
    .filter_map(|n| report.time_share(n))
    .sum();
    row(
        "error-queue ecalls' share of ecall time",
        format!(
            "{:.1}% across 12k+ pure-overhead transitions",
            err_share * 100.0
        ),
    );
    let io_share: f64 = ["enclave_ocall_read", "enclave_ocall_write"]
        .iter()
        .filter_map(|n| report.time_share(n))
        .sum();
    row(
        "socket ocalls' share of ocall time",
        format!("{:.1}%", io_share * 100.0),
    );

    // The Figure 5 call graph.
    let graph = analyzer.call_graph();
    let dot = graph.to_dot();
    let out = std::path::Path::new("target/fig5_talos_callgraph.dot");
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(out, &dot).expect("write DOT file");
    row(
        "call graph",
        format!(
            "{} nodes, {} edges -> {}",
            graph.nodes.len(),
            graph.edges.len(),
            out.display()
        ),
    );

    // The paper's headline edges: error-queue traffic and socket I/O.
    println!("\n  main call-graph edges (direct parents, by count):");
    let mut direct: Vec<_> = graph.edges.iter().filter(|e| !e.indirect).collect();
    direct.sort_by_key(|e| std::cmp::Reverse(e.count));
    for e in direct.iter().take(10) {
        let from = graph.nodes.iter().find(|n| n.call == e.from).unwrap();
        let to = graph.nodes.iter().find(|n| n.call == e.to).unwrap();
        println!("    {:<44} -> {:<44} {:>8}", from.name, to.name, e.count);
    }

    println!("\n  top findings:");
    for d in report.detections.iter().take(8) {
        println!("    {d}");
    }
}
