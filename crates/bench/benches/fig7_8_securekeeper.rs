//! E6 (§5.2.4 + Figures 7 and 8): SecureKeeper under full load.
//!
//! Paper: 1.1 M ecall and 111 ocall events over 31 s; two ecalls with mean
//! durations ≈14 µs and ≈18 µs (4–6× the transition cost); 18 sync ocalls
//! during the simultaneous-connect phase; the histogram of
//! `handle_input_from_client` peaks around 15 µs (Figure 7); working set
//! 322 pages at start-up vs 94 in steady state; at 94-page working sets
//! ~250 enclaves fit into the EPC without paging.

use sgx_perf::analysis::stats::{scatter, scatter_csv, Histogram};
use sgx_perf::{Analyzer, CallKind, Logger, LoggerConfig};
use sgx_perf_bench::{banner, row, scaled_duration, timed_real};
use sim_core::{HwProfile, Nanos};
use workloads::securekeeper::{run, working_set_probe, SecureKeeperConfig};
use workloads::Harness;

fn main() {
    banner(
        "E6",
        "SecureKeeper proxy under full load (Figures 7+8, §5.2.4)",
    );
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let config = SecureKeeperConfig {
        duration: scaled_duration(Nanos::from_secs(31)).max(Nanos::from_millis(300)),
        ..SecureKeeperConfig::default()
    };
    row("virtual run length", config.duration);
    let result = timed_real("workload", || run(&harness, &config).unwrap());
    let trace = logger.finish();
    let analyzer = Analyzer::new(&trace, harness.profile().cost_model());
    let report = analyzer.analyze();

    row("requests proxied", result.stats.operations);
    row(
        "ecall events",
        format!("{} (paper @31s: 1.1M)", report.totals.ecall_events),
    );
    row(
        "ocall events",
        format!("{} (paper: 111)", report.totals.ocall_events),
    );
    row(
        "sync ocall events (sleeps+wakes)",
        format!(
            "{} (paper: 18, all during the connect phase)",
            report.totals.sync_sleeps + report.totals.sync_wakes
        ),
    );
    for (name, paper) in [
        ("ecall_handle_input_from_client", "14us"),
        ("ecall_handle_input_from_zk", "18us"),
    ] {
        if let Some(stats) = report.stats_for(name) {
            row(
                &format!("{name} mean"),
                format!("{:.1}us (paper: ~{paper})", stats.mean_ns / 1_000.0),
            );
        }
    }
    row(
        "performance findings",
        format!(
            "{} (paper: none — interface already narrow and calls long)",
            report
                .detections
                .iter()
                .filter(|d| d.problem != sgx_perf::Problem::Interface)
                .count()
        ),
    );

    // Figure 7: histogram of the client-side ecall, 100 bins.
    let instances = analyzer.instances();
    let client_call = report
        .call_stats
        .iter()
        .zip(&report.call_names)
        .find(|(_, name)| *name == "ecall_handle_input_from_client")
        .map(|((call, _), _)| *call)
        .expect("hot ecall traced");
    let hist = Histogram::of_call(&instances, client_call, 100).expect("histogram");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/fig7_histogram.csv", hist.to_csv()).unwrap();
    let peak_bin = hist
        .bins
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(i, _)| hist.min_ns + i as u64 * hist.bin_width_ns)
        .unwrap();
    row(
        "Figure 7 histogram",
        format!(
            "100 bins -> target/fig7_histogram.csv; mode at {:.1}us (paper: ~15us)",
            peak_bin as f64 / 1_000.0
        ),
    );

    // Figure 8: scatter of execution times over application time.
    let points = scatter(&instances, client_call);
    std::fs::write("target/fig8_scatter.csv", scatter_csv(&points)).unwrap();
    row(
        "Figure 8 scatter",
        format!("{} points -> target/fig8_scatter.csv", points.len()),
    );
    row(
        "share of ecalls < 10us",
        format!(
            "{:.2}% (paper: ~0% — no short-call problems)",
            report.short_fraction(CallKind::Ecall) * 100.0
        ),
    );

    // Working sets + EPC packing (§5.2.4).
    let (startup, steady) = working_set_probe(
        &Harness::new(HwProfile::Unpatched),
        &SecureKeeperConfig::default(),
        200,
    )
    .unwrap();
    row(
        "working set at start-up",
        format!(
            "{startup} pages = {:.2} MiB (paper: 322 = 1.26 MiB)",
            startup as f64 * 4.0 / 1024.0
        ),
    );
    row(
        "working set in steady state",
        format!(
            "{steady} pages = {:.2} MiB (paper: 94 = 0.36 MiB)",
            steady as f64 * 4.0 / 1024.0
        ),
    );
    let epc_pages = harness.machine().epc_capacity();
    row(
        "enclaves fitting the EPC at steady working set",
        format!("{} (paper: 249)", epc_pages / steady.max(1)),
    );
}
