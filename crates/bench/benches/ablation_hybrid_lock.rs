//! Ablation (§3.4 mitigation): the SDK sleep-based mutex vs the hybrid
//! spin-then-sleep mutex sgx-perf recommends for SSC problems, across spin
//! budgets.
//!
//! Expectation: contended short critical sections with the plain SDK mutex
//! burn two ocalls per contention; a modest spin budget eliminates almost
//! all of them and shortens the run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sgx_perf_bench::{banner, row, scaled_count};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, SgxHybridMutex, SgxThreadMutex, ThreadCtx};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::{Clock, HwProfile, Nanos};
use sim_threads::Simulation;

enum Lock {
    Sdk(SgxThreadMutex),
    Hybrid(SgxHybridMutex),
}

fn contend(threads: usize, rounds: u64, lock: Lock) -> (Nanos, usize) {
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec =
        sgx_edl::parse("enclave { trusted { public void ecall_op(uint64_t i); }; };").unwrap();
    let enclave = rt
        .create_enclave(
            &spec,
            &EnclaveConfig {
                tcs_count: threads,
                ..EnclaveConfig::default()
            },
        )
        .unwrap();
    let lock = Arc::new(lock);
    let l2 = Arc::clone(&lock);
    enclave
        .register_ecall("ecall_op", move |ctx, _| {
            match &*l2 {
                Lock::Sdk(m) => {
                    m.lock(ctx)?;
                    if let Some(sim) = ctx.thread().sim {
                        sim.yield_now();
                    }
                    ctx.compute(Nanos::from_nanos(300))?;
                    m.unlock(ctx)?;
                }
                Lock::Hybrid(m) => {
                    m.lock(ctx)?;
                    if let Some(sim) = ctx.thread().sim {
                        sim.yield_now();
                    }
                    ctx.compute(Nanos::from_nanos(300))?;
                    m.unlock(ctx)?;
                }
            }
            Ok(())
        })
        .unwrap();
    let base = OcallTableBuilder::new(enclave.spec()).build().unwrap();
    let sync_count = Arc::new(AtomicUsize::new(0));
    let sc = Arc::clone(&sync_count);
    let table = Arc::new(base.wrap(move |_, name, orig| {
        let sc = Arc::clone(&sc);
        let is_sync = sgx_sdk::sync_ocalls::is_sync_ocall(name);
        Arc::new(move |host, data| {
            if is_sync {
                sc.fetch_add(1, Ordering::SeqCst);
            }
            orig(host, data)
        })
    }));

    let sim = Simulation::new(rt.machine().clock().clone());
    for _ in 0..threads {
        let rt = Arc::clone(&rt);
        let table = Arc::clone(&table);
        let eid = enclave.id();
        sim.spawn("worker", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            for i in 0..rounds {
                rt.ecall(&tcx, eid, "ecall_op", &table, &mut CallData::new(i))
                    .unwrap();
                // The host event loop runs between requests, releasing the
                // core — this is where a spinner gets its chance.
                ctx.yield_now();
            }
        });
    }
    let before = rt.machine().clock().now();
    sim.run();
    (
        rt.machine().clock().now() - before,
        sync_count.load(Ordering::SeqCst),
    )
}

fn main() {
    banner(
        "A1",
        "hybrid spin-then-sleep locking vs SDK mutex (SSC mitigation, §3.4)",
    );
    let threads = 4;
    let rounds = scaled_count(2_000, 200);
    row(
        "threads / lock-ops per thread",
        format!("{threads} / {rounds}"),
    );
    println!(
        "\n  {:<28} {:>14} {:>14} {:>16}",
        "lock", "elapsed", "sync ocalls", "ocalls per op"
    );
    let total_ops = threads as u64 * rounds;
    let (sdk_time, sdk_sync) = contend(threads, rounds, Lock::Sdk(SgxThreadMutex::new()));
    println!(
        "  {:<28} {:>14} {:>14} {:>16.3}",
        "SDK mutex (sleep always)",
        sdk_time.to_string(),
        sdk_sync,
        sdk_sync as f64 / total_ops as f64
    );
    for budget in [1u32, 4, 16, 64] {
        let (time, sync) = contend(threads, rounds, Lock::Hybrid(SgxHybridMutex::new(budget)));
        println!(
            "  {:<28} {:>14} {:>14} {:>16.3}",
            format!("hybrid, spin budget {budget}"),
            time.to_string(),
            sync,
            sync as f64 / total_ops as f64
        );
    }
    println!("\n  expectation: spinning absorbs short contention; sync ocalls -> 0 and");
    println!("  the run gets faster, validating the paper's SSC recommendation.");
}
