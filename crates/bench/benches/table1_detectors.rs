//! E7 (Table 1): the problem → solution matrix, demonstrated by running
//! one isolated anti-pattern micro-workload per problem class and showing
//! which detector fires and what it recommends.

use sgx_perf::{Analyzer, Logger, LoggerConfig, Problem};
use sgx_perf_bench::{banner, scaled_count};
use sgx_sim::MachineParams;
use sim_core::HwProfile;
use workloads::{antipatterns, Harness};

fn detect(harness: &Harness, logger: &Logger, expect: Problem) -> Vec<String> {
    let trace = logger.finish();
    let report = Analyzer::new(&trace, harness.profile().cost_model()).analyze();
    let mut recs: Vec<String> = report
        .detections
        .iter()
        .filter(|d| d.problem == expect)
        .map(|d| format!("{}", d.recommendation))
        .collect();
    recs.sort();
    recs.dedup();
    recs
}

fn main() {
    banner("E7", "problem -> solution matrix (Table 1)");
    let n = scaled_count(500, 100);
    println!("  {:<44} recommended solutions", "problem (workload)");

    let print = |label: &str, recs: &[String]| {
        if recs.is_empty() {
            println!("  {label:<44} (none!)");
        }
        for (i, r) in recs.iter().enumerate() {
            let l = if i == 0 { label } else { "" };
            println!("  {l:<44} - {r}");
        }
    };

    {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        antipatterns::sisc(&h, n).unwrap();
        print(
            "SISC (tight identical ecall loop)",
            &detect(&h, &logger, Problem::Sisc),
        );
    }
    {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        antipatterns::sdsc(&h, n).unwrap();
        print(
            "SDSC (alternating seek/write ecalls)",
            &detect(&h, &logger, Problem::Sdsc),
        );
    }
    {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        antipatterns::snc(&h, n).unwrap();
        print(
            "SNC (alloc ocall at ecall start)",
            &detect(&h, &logger, Problem::Snc),
        );
    }
    {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        antipatterns::ssc(&h, n).unwrap();
        print(
            "SSC (contended short critical section)",
            &detect(&h, &logger, Problem::Ssc),
        );
    }
    {
        let h = Harness::with_machine_params(
            HwProfile::Unpatched,
            MachineParams {
                epc_pages: 256,
                ..MachineParams::default()
            },
        );
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        antipatterns::paging(&h, 4).unwrap();
        print(
            "Paging (working set > EPC)",
            &detect(&h, &logger, Problem::Paging),
        );
    }
    {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        antipatterns::permissive_interface(&h, n.min(100)).unwrap();
        print(
            "Permissive interface (3 issues)",
            &detect(&h, &logger, Problem::Interface),
        );
    }
    println!(
        "\n  paper Table 1: batch/move, merge/move, reorder/duplicate, lock-free/hybrid,\n  reduce-memory/pre-load/no-SGX-paging, limit-public/limit-allow/check-pointers"
    );
}
