//! E2 (Table 2): overhead of the sgx-perf event logger.
//!
//! Three experiments on the unpatched profile:
//! (1) a single empty ecall ×n, (2) an ecall performing one empty ocall
//! ×n, (3) a long (45 ms-class) ecall ×n with AEX counting or tracing.
//!
//! Paper rows: native 4,205 ns / 8,013 ns; with logging 5,572 ns /
//! 10,699 ns (≈1,366 ns per ecall, ≈1,320 ns per ocall); AEX counting
//! ≈1,076 ns and tracing ≈1,118 ns per AEX over ≈11.5 AEXs per long call.

use std::sync::Arc;

use sgx_perf::{AexMode, Logger, LoggerConfig};
use sgx_perf_bench::{banner, row, scaled_count, timed_real};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::{Clock, HwProfile, Nanos};

struct Bench {
    rt: Arc<Runtime>,
    eid: sgx_sim::EnclaveId,
    table: Arc<sgx_sdk::OcallTable>,
}

fn setup() -> Bench {
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave { trusted {
            public void ecall_empty();
            public void ecall_with_ocall();
            public void ecall_loop(uint64_t ns);
        }; untrusted { void ocall_empty(); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_empty", |_, _| Ok(()))
        .unwrap();
    enclave
        .register_ecall("ecall_with_ocall", |ctx, _| {
            ctx.ocall("ocall_empty", &mut CallData::default())
        })
        .unwrap();
    enclave
        .register_ecall("ecall_loop", |ctx, data| {
            ctx.compute(Nanos::from_nanos(data.scalar))?;
            Ok(())
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_empty", |_, _| Ok(())).unwrap();
    let table = Arc::new(builder.build().unwrap());
    Bench {
        eid: enclave.id(),
        rt,
        table,
    }
}

fn mean_call(b: &Bench, name: &str, scalar: u64, n: u64) -> Nanos {
    let tcx = ThreadCtx::main();
    // Warmup.
    for _ in 0..(n / 100).max(10) {
        b.rt.ecall(&tcx, b.eid, name, &b.table, &mut CallData::new(scalar))
            .unwrap();
    }
    let before = b.rt.machine().clock().now();
    for _ in 0..n {
        b.rt.ecall(&tcx, b.eid, name, &b.table, &mut CallData::new(scalar))
            .unwrap();
    }
    (b.rt.machine().clock().now() - before) / n
}

fn main() {
    banner("E2", "logger overhead (Table 2)");
    let n = scaled_count(1_000_000, 20_000);
    let n_long = scaled_count(1_000, 50);
    let long_ns = 45_377_000; // the paper's ~45.4 ms loop ecall

    // (1) and (2): native.
    let native = setup();
    let native_single = mean_call(&native, "ecall_empty", 0, n);
    let native_ocall = mean_call(&native, "ecall_with_ocall", 0, n);

    // (1) and (2): with logging.
    let logged = setup();
    let _logger = Logger::attach(&logged.rt, LoggerConfig::default());
    let logged_single = timed_real("experiment 1+2", || mean_call(&logged, "ecall_empty", 0, n));
    let logged_ocall = mean_call(&logged, "ecall_with_ocall", 0, n);

    println!(
        "  {:<26} {:>14} {:>18}",
        "", "(1) single ecall", "(2) ecall+ocall"
    );
    println!(
        "  {:<26} {:>14} {:>18}",
        "native",
        native_single.to_string(),
        native_ocall.to_string()
    );
    println!(
        "  {:<26} {:>14} {:>18}",
        "with logging",
        logged_single.to_string(),
        logged_ocall.to_string()
    );
    println!(
        "  {:<26} {:>14} {:>18}",
        "overhead",
        (logged_single - native_single).to_string(),
        (logged_ocall - native_ocall).to_string()
    );
    row("paper native", "4,205ns / 8,013ns");
    row("paper with logging", "5,572ns / 10,699ns");
    row("paper overhead", "~1,366ns per ecall, ~1,320ns per ocall");

    // (3): long ecall with AEX observation.
    println!();
    println!(
        "  {:<26} {:>16} {:>12} {:>16}",
        "(3) long ecall", "execution", "AEX count", "per-AEX overhead"
    );
    let mut base_mean = None;
    for (label, mode) in [
        ("logging only", AexMode::Off),
        ("+ AEX counting", AexMode::Count),
        ("+ AEX tracing", AexMode::Trace),
    ] {
        let b = setup();
        let logger = Logger::attach(&b.rt, LoggerConfig::with_aex(mode));
        let mean = mean_call(&b, "ecall_loop", long_ns, n_long);
        let trace = logger.finish();
        let total_aex: u64 = trace.ecalls.iter().map(|e| e.aex_count).sum();
        let mean_aex = total_aex as f64 / trace.ecalls.len() as f64;
        let base = *base_mean.get_or_insert(mean);
        let per_aex = if mean_aex > 0.0 {
            format!(
                "{:.0}ns",
                (mean.as_nanos() as f64 - base.as_nanos() as f64) / mean_aex
            )
        } else {
            "-".to_string()
        };
        println!(
            "  {:<26} {:>16} {:>12.2} {:>16}",
            label,
            mean.to_string(),
            mean_aex,
            per_aex
        );
    }
    row(
        "paper",
        "45,377us exec, ~11.5 AEX; counting ~1,076ns, tracing ~1,118ns per AEX",
    );
}
