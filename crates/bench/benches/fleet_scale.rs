//! Fleet-scale micro-bench: the simulator's per-event costs must stay
//! sublinear in the number of enclaves, or a 1000-enclave fleet run would
//! be quadratic end to end.
//!
//! Exercised paths (all refactored to indexed structures for the fleet
//! subsystem):
//!
//! * eviction-victim selection — `BTreeMap` LRU stamps instead of a linear
//!   free-list/stamp scan,
//! * reverse address translation (`vaddr_to_page`) — base-address
//!   `BTreeMap` range lookup instead of a scan over all enclaves,
//! * enclave destruction — per-enclave resident-page index instead of a
//!   full EPC sweep.
//!
//! The bench *asserts* sublinearity: per-eviction real time at 1024
//! resident enclaves must stay under 8x the 16-enclave cost (a linear
//! victim scan would be ~64x).

use std::sync::Arc;
use std::time::Instant;

use sgx_perf_bench::{banner, row, scaled_count};
use sgx_sdk::Runtime;
use sgx_sim::{EnclaveConfig, EnclaveId, EvictionPolicy, Machine, MachineParams};
use sim_core::{Clock, HwProfile};

const EDL: &str = "enclave { trusted { public void ecall_noop(); }; };";

/// Builds a machine holding `enclaves` small enclaves over an EPC sized at
/// half their combined footprint, so every cold touch must evict.
fn fleet_machine(enclaves: usize) -> (Arc<Machine>, Arc<Runtime>, Vec<EnclaveId>, Vec<usize>) {
    let config = EnclaveConfig {
        heap_kib: 64,
        ..EnclaveConfig::default()
    };
    let per_enclave = sgx_sim::EnclaveLayout::new(&config).total_pages();
    let machine = Arc::new(Machine::with_params(
        Clock::new(),
        HwProfile::Unpatched,
        MachineParams {
            epc_pages: enclaves * per_enclave / 2,
            eviction: EvictionPolicy::Lru,
            ..MachineParams::default()
        },
    ));
    let rt = Runtime::new(Arc::clone(&machine));
    let spec = sgx_edl::parse(EDL).unwrap();
    let mut eids = Vec::with_capacity(enclaves);
    let mut heap_starts = Vec::with_capacity(enclaves);
    for _ in 0..enclaves {
        let enclave = rt.create_enclave(&spec, &config).unwrap();
        heap_starts.push(machine.heap_range(enclave.id()).unwrap().start);
        eids.push(enclave.id());
    }
    (machine, rt, eids, heap_starts)
}

/// Drives `iters` guaranteed-miss prefetches (cyclic access over a working
/// set twice the EPC, under LRU) and returns the best-of-3 real time per
/// eviction in nanoseconds.
fn per_eviction_ns(enclaves: usize, iters: u64) -> f64 {
    let (machine, _rt, eids, heap_starts) = fleet_machine(enclaves);
    let heap_pages = 16usize; // 64 KiB of heap
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for cursor in 0..iters as usize {
            let e = cursor % eids.len();
            let page = heap_starts[e] + (cursor / eids.len()) % heap_pages;
            machine.prefetch(eids[e], page..page + 1).unwrap();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn main() {
    banner(
        "A3",
        "fleet scale: per-event cost vs enclave count (sublinearity gate)",
    );
    let iters = scaled_count(40_000, 8_000);

    // Spin-up rate: enclave creation at fleet scale (EADD churn included).
    for n in [16usize, 256, 1024] {
        let start = Instant::now();
        let (_m, _rt, eids, _h) = fleet_machine(n);
        let secs = start.elapsed().as_secs_f64();
        row(
            &format!("spin-up, {n} enclaves"),
            format!("{:.0} enclaves/sec real", eids.len() as f64 / secs),
        );
    }

    println!();
    let small = per_eviction_ns(16, iters);
    let large = per_eviction_ns(1024, iters);
    let ratio = large / small;
    row("per-eviction, 16 enclaves", format!("{small:.0} ns real"));
    row("per-eviction, 1024 enclaves", format!("{large:.0} ns real"));
    row("ratio (linear scan would be ~64x)", format!("{ratio:.2}x"));
    assert!(
        ratio < 8.0,
        "eviction-victim selection is not sublinear in enclave count: \
         {large:.0} ns at 1024 enclaves vs {small:.0} ns at 16 ({ratio:.2}x)"
    );
    println!("\n  OK: victim selection stays sublinear in enclave count");
}
