//! E5 (§5.2.3 + Figure 6, right): Glamdring-partitioned LibreSSL signing.
//!
//! Paper: 145 signs/s native vs 33.88 signs/s partitioned on the authors'
//! machine; `bn_sub_part_words` is 99.5% of 6.6 M ecalls at ≈3 µs mean;
//! moving `bn_mul_recursive` into the enclave gives 2.16× (unpatched),
//! 2.66× (Spectre) and 2.87× (L1TF); working set 61 pages at start-up,
//! 32 during the benchmark.

use sgx_perf::{Analyzer, Logger, LoggerConfig, Problem, WorkingSetEstimator};
use sgx_perf_bench::{banner, ratio, row, scaled_duration, timed_real};
use sim_core::{HwProfile, Nanos};
use workloads::glamdring::{run, GlamdringApp, GlamdringConfig};
use workloads::{Harness, Variant};

fn signs_per_sec(profile: HwProfile, variant: Variant, duration: Nanos) -> f64 {
    let harness = Harness::new(profile);
    let config = GlamdringConfig {
        duration,
        variant,
        ..GlamdringConfig::default()
    };
    run(&harness, &config).unwrap().stats.throughput()
}

fn main() {
    banner("E5", "Glamdring LibreSSL signing (Figure 6, §5.2.3)");
    let duration = scaled_duration(Nanos::from_secs(30)).max(Nanos::from_millis(500));
    row("virtual benchmark duration per run", duration);

    println!(
        "\n  {:<16} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "profile", "native", "enclave", "optimised", "encl/nat", "speedup"
    );
    for profile in HwProfile::ALL {
        let (native, enclave, optimised) = timed_real(profile.label(), || {
            (
                signs_per_sec(profile, Variant::Native, duration),
                signs_per_sec(profile, Variant::Enclave, duration),
                signs_per_sec(profile, Variant::Optimised, duration),
            )
        });
        println!(
            "  {:<16} {:>10.1}/s {:>10.1}/s {:>10.1}/s {:>10} {:>10}",
            profile.label(),
            native,
            enclave,
            optimised,
            ratio(enclave / native),
            ratio(optimised / enclave),
        );
    }
    row(
        "paper",
        "145/s native, 33.88/s enclave; speedups 2.16x / 2.66x / 2.87x",
    );

    // Traced run: call-count structure + SISC detection.
    println!("\n  sgx-perf analysis of the partitioned variant:");
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let traced = timed_real("traced run", || {
        run(
            &harness,
            &GlamdringConfig {
                duration: duration.min(Nanos::from_secs(2)),
                variant: Variant::Enclave,
                ..GlamdringConfig::default()
            },
        )
        .unwrap()
    });
    let trace = logger.finish();
    let report = Analyzer::new(&trace, harness.profile().cost_model()).analyze();
    let sub_stats = report
        .stats_for("ecall_bn_sub_part_words")
        .expect("hot ecall traced");
    row(
        "ecall events",
        format!(
            "{} over {} signs (paper: 6.6M over ~1,016 signs)",
            report.totals.ecall_events, traced.stats.operations
        ),
    );
    row(
        "bn_sub_part_words share of ecalls",
        format!(
            "{:.2}% (paper: 99.5%)",
            100.0 * sub_stats.count as f64 / report.totals.ecall_events as f64
        ),
    );
    row(
        "bn_sub_part_words mean duration",
        format!(
            "{:.1}us (paper: ~3us, basically the transition time)",
            sub_stats.mean_ns / 1_000.0
        ),
    );
    row(
        "ocall events",
        format!("{} (paper: 110,511 over 30s)", report.totals.ocall_events),
    );
    let sisc = report
        .detections
        .iter()
        .find(|d| d.problem == Problem::Sisc && d.name == "ecall_bn_sub_part_words");
    row(
        "SISC detected on bn_sub_part_words",
        format!("{} (paper: yes — batching/moving flagged)", sisc.is_some()),
    );
    if let Some(d) = sisc {
        println!("    {d}");
    }

    // Working-set analysis (§5.2.3: 61 pages after start-up, 32 during).
    println!("\n  working-set estimation:");
    let harness = Harness::new(HwProfile::Unpatched);
    let app = GlamdringApp::new(
        &harness,
        &GlamdringConfig {
            duration: Nanos::from_millis(200),
            variant: Variant::Enclave,
            ..GlamdringConfig::default()
        },
    )
    .unwrap();
    let wse = WorkingSetEstimator::attach(harness.machine(), app.enclave_id()).unwrap();
    app.startup().unwrap();
    let startup = wse.mark().unwrap();
    app.sign_for(Nanos::from_millis(120)).unwrap();
    let steady = wse.mark().unwrap();
    wse.detach().unwrap();
    row(
        "pages touched during start-up",
        format!("{} = {:.2} MiB (paper: 61)", startup.pages, startup.mib()),
    );
    row(
        "pages touched during benchmark",
        format!("{} = {:.2} MiB (paper: 32)", steady.pages, steady.mib()),
    );
}
