//! E4 (§5.2.2 + Figure 6, left): SQLite insert benchmark — native vs
//! enclavised vs merged-ocall optimised, across all three hardware
//! profiles.
//!
//! Paper (unpatched): 23,087 req/s native, 13,160 req/s enclavised
//! (0.57×), 17,483 req/s after merging lseek+write (0.76×, +33%); the
//! analyzer reports the lseek/write SDSC merge opportunity.

use sgx_perf::{Analyzer, Logger, LoggerConfig, Recommendation};
use sgx_perf_bench::{banner, ratio, row, scaled_count, timed_real};
use sim_core::HwProfile;
use workloads::sqlitedb::{run, SqliteConfig};
use workloads::{Harness, Variant};

fn throughput(profile: HwProfile, variant: Variant, inserts: u64) -> f64 {
    let harness = Harness::new(profile);
    let config = SqliteConfig {
        inserts,
        variant,
        ..SqliteConfig::default()
    };
    run(&harness, &config).unwrap().throughput()
}

fn main() {
    banner(
        "E4",
        "SQLite inserts: native / enclave / optimised (Figure 6)",
    );
    let inserts = scaled_count(10_000, 1_000);

    println!(
        "  {:<16} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "profile", "native", "enclave", "optimised", "encl/nat", "opt/encl"
    );
    for profile in HwProfile::ALL {
        let native = throughput(profile, Variant::Native, inserts);
        let enclave = throughput(profile, Variant::Enclave, inserts);
        let optimised = throughput(profile, Variant::Optimised, inserts);
        println!(
            "  {:<16} {:>10.0}/s {:>10.0}/s {:>10.0}/s {:>10} {:>10}",
            profile.label(),
            native,
            enclave,
            optimised,
            ratio(enclave / native),
            ratio(optimised / enclave),
        );
    }
    row(
        "paper (unpatched)",
        "23,087/s native, 13,160/s enclave (0.57x), 17,483/s optimised (+33%)",
    );

    // The analyzer finding that motivates the optimisation.
    println!("\n  sgx-perf findings on the enclavised trace:");
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    timed_real("traced run", || {
        run(
            &harness,
            &SqliteConfig {
                inserts: inserts.min(3_000),
                variant: Variant::Enclave,
                ..SqliteConfig::default()
            },
        )
        .unwrap()
    });
    let trace = logger.finish();
    let report = Analyzer::new(&trace, harness.profile().cost_model()).analyze();
    for d in report.detections.iter().take(6) {
        println!("    {d}");
    }
    let merge_found = report.detections.iter().any(|d| {
        matches!(&d.recommendation, Recommendation::MergeCalls { with } if with == "ocall_lseek")
    });
    row(
        "lseek+write merge recommended",
        format!("{merge_found} (paper: yes — the applied optimisation)"),
    );
    if let Some(stats) = report.stats_for("ocall_lseek") {
        row(
            "ocall_lseek mean",
            format!("{:.1}us (paper: ~4us, short)", stats.mean_ns / 1_000.0),
        );
    }
    if let Some(stats) = report.stats_for("ocall_write") {
        row(
            "ocall_write mean",
            format!("{:.1}us (paper: ~17us)", stats.mean_ns / 1_000.0),
        );
    }
}
