//! E1 (§2.3.1): enclave transition round-trip costs on the three hardware
//! settings — unmodified, Spectre-patched, and additionally L1TF-patched.
//!
//! Paper: ≈5,850 cycles (≈2,130 ns) → ≈10,170 cycles (≈3,850 ns, 1.74×)
//! → ≈13,100 cycles (≈4,890 ns, 2.24×).

use std::sync::Arc;

use sgx_perf_bench::{banner, row, scaled_count};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::{Clock, HwProfile, Nanos};

fn measure_roundtrip(profile: HwProfile, iterations: u64) -> (Nanos, Nanos) {
    let machine = Arc::new(Machine::new(Clock::new(), profile));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_empty(); }; };").unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_empty", |_, _| Ok(()))
        .unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    let tcx = ThreadCtx::main();
    // Warm up (the paper uses warm caches).
    for _ in 0..100 {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_empty",
            &table,
            &mut CallData::default(),
        )
        .unwrap();
    }
    let before = rt.machine().clock().now();
    for _ in 0..iterations {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_empty",
            &table,
            &mut CallData::default(),
        )
        .unwrap();
    }
    let per_call = (rt.machine().clock().now() - before) / iterations;
    let raw = rt.machine().cost_model().transition_roundtrip();
    (raw, per_call)
}

fn main() {
    banner(
        "E1",
        "enclave transition costs per mitigation level (paper §2.3.1)",
    );
    let iterations = scaled_count(1_000_000, 10_000);
    println!(
        "  {:<16} {:>16} {:>14} {:>18} {:>10}",
        "setting", "raw roundtrip", "rep. cycles", "full SDK ecall", "vs base"
    );
    let mut base = None;
    for profile in HwProfile::ALL {
        let (raw, full) = measure_roundtrip(profile, iterations);
        let cm = profile.cost_model();
        let base_ns = *base.get_or_insert(raw.as_nanos());
        println!(
            "  {:<16} {:>16} {:>14} {:>18} {:>9.2}x",
            profile.label(),
            raw.to_string(),
            cm.reported_roundtrip_cycles.get(),
            full.to_string(),
            raw.as_nanos() as f64 / base_ns as f64,
        );
    }
    row(
        "paper",
        "2,130ns / 3,850ns (1.74x) / 4,890ns (2.24x) raw roundtrips",
    );
}
