//! Criterion micro-benchmarks of the *simulator itself* (real host time,
//! not virtual time): these guard the reproduction's own performance so
//! the million-ecall experiments stay tractable.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sgx_perf::{Logger, LoggerConfig};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::{Clock, HwProfile, Nanos};

struct App {
    rt: Arc<Runtime>,
    eid: sgx_sim::EnclaveId,
    table: Arc<sgx_sdk::OcallTable>,
}

fn app() -> App {
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_empty(); public void ecall_io(); };
                   untrusted { void ocall_empty(); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_empty", |_, _| Ok(()))
        .unwrap();
    enclave
        .register_ecall("ecall_io", |ctx, _| {
            ctx.ocall("ocall_empty", &mut CallData::default())
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_empty", |_, _| Ok(())).unwrap();
    let table = Arc::new(builder.build().unwrap());
    App {
        eid: enclave.id(),
        rt,
        table,
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(1));

    let a = app();
    let tcx = ThreadCtx::main();
    group.bench_function("sdk_ecall_dispatch", |b| {
        b.iter(|| {
            a.rt.ecall(
                &tcx,
                a.eid,
                "ecall_empty",
                &a.table,
                &mut CallData::default(),
            )
            .unwrap()
        })
    });

    let a = app();
    group.bench_function("sdk_ecall_plus_ocall", |b| {
        b.iter(|| {
            a.rt.ecall(&tcx, a.eid, "ecall_io", &a.table, &mut CallData::default())
                .unwrap()
        })
    });

    let a = app();
    let _logger = Logger::attach(&a.rt, LoggerConfig::default());
    group.bench_function("sdk_ecall_with_logger", |b| {
        b.iter(|| {
            a.rt.ecall(&tcx, a.eid, "ecall_io", &a.table, &mut CallData::default())
                .unwrap()
        })
    });

    let a = app();
    group.bench_function("in_enclave_compute_45ms", |b| {
        b.iter(|| {
            let machine = a.rt.machine();
            machine
                .execute_in_enclave(
                    a.eid,
                    sgx_sim::ThreadToken::MAIN,
                    Nanos::from_micros(45_377),
                )
                .unwrap()
        })
    });
    group.finish();
}

fn bench_eventdb(c: &mut Criterion) {
    use sgx_perf::TraceDb;
    let mut group = c.benchmark_group("eventdb");
    // A realistic trace: 100k ecall rows.
    let mut trace = TraceDb::default();
    for i in 0..100_000u64 {
        trace.ecalls.insert(sgx_perf::events::EcallRow {
            thread: i % 8,
            enclave: 1,
            call_index: (i % 16) as u32,
            start_ns: i * 1_000,
            end_ns: i * 1_000 + 700,
            parent_ocall: None,
            aex_count: 0,
            failed: false,
        });
    }
    let bytes = trace.to_bytes();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_100k_rows", |b| b.iter(|| trace.to_bytes()));
    group.bench_function("decode_100k_rows", |b| {
        b.iter(|| TraceDb::from_bytes(&bytes).unwrap())
    });
    group.finish();
}

fn bench_analyzer(c: &mut Criterion) {
    use sgx_perf::{Analyzer, TraceDb};
    let mut group = c.benchmark_group("analyzer");
    let mut trace = TraceDb::default();
    let mut t = 0u64;
    for i in 0..50_000u64 {
        trace.ecalls.insert(sgx_perf::events::EcallRow {
            thread: i % 4,
            enclave: 1,
            call_index: (i % 8) as u32,
            start_ns: t,
            end_ns: t + 3_000 + (i % 7) * 900,
            parent_ocall: None,
            aex_count: 0,
            failed: false,
        });
        t += 10_000;
    }
    group.bench_function("full_analysis_50k_events", |b| {
        b.iter(|| Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_dispatch, bench_eventdb, bench_analyzer
}
criterion_main!(benches);
