//! Ablation (§3.5): EPC paging behaviour — eviction policy (FIFO vs LRU)
//! and EPC-size sweep, plus the pre-loading mitigation the paper suggests
//! ("load pages before the ecall" so faults avoid in-enclave AEXs).

use sgx_perf_bench::{banner, row, scaled_count};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, EvictionPolicy, Machine, MachineParams};
use sim_core::{Clock, HwProfile, Nanos};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs a skewed random-access workload (90% of touches hit a 64-page hot
/// set, 10% roam a 256-page heap) against a constrained EPC. Returns
/// (virtual time, page-ins).
fn scan_run(epc_pages: usize, policy: EvictionPolicy, calls: u64, preload: bool) -> (Nanos, usize) {
    let machine = Arc::new(Machine::with_params(
        Clock::new(),
        HwProfile::Unpatched,
        MachineParams {
            epc_pages,
            eviction: policy,
            ..MachineParams::default()
        },
    ));
    let page_ins = Arc::new(AtomicUsize::new(0));
    let pi = Arc::clone(&page_ins);
    machine.add_driver_hook(Arc::new(move |ev| {
        if let sgx_sim::DriverEvent::Paging {
            direction: sgx_sim::PagingDirection::In,
            ..
        } = ev
        {
            pi.fetch_add(1, Ordering::SeqCst);
        }
    }));
    let rt = Runtime::new(Arc::clone(&machine));
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_lookup(uint64_t key); }; };")
        .unwrap();
    let enclave = rt
        .create_enclave(
            &spec,
            &EnclaveConfig {
                heap_kib: 1_024, // 256 heap pages
                ..EnclaveConfig::default()
            },
        )
        .unwrap();
    let heap = machine.heap_range(enclave.id()).unwrap();
    let heap_len = heap.len();
    let heap_start = heap.start;
    // Each call touches 16 pages, skewed 90/10 hot/cold, driven by the key.
    enclave
        .register_ecall("ecall_lookup", move |ctx, data| {
            let mut rng = sim_core::rng::seeded(data.scalar);
            for _ in 0..16 {
                let page = if rng.gen::<f64>() < 0.9 {
                    heap_start + rng.gen_range(0..64)
                } else {
                    heap_start + rng.gen_range(0..heap_len)
                };
                ctx.touch(page..page + 1, AccessKind::Read)?;
            }
            ctx.compute(Nanos::from_micros(20))?;
            Ok(())
        })
        .unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    let tcx = ThreadCtx::main();
    let before = machine.clock().now();
    for key in 0..calls {
        if preload {
            // §3.5(ii): fault the pages in before the ecall — same pattern,
            // but the faults cost no in-enclave AEXs.
            let mut rng = sim_core::rng::seeded(key);
            for _ in 0..16 {
                let page = if rng.gen::<f64>() < 0.9 {
                    heap_start + rng.gen_range(0..64)
                } else {
                    heap_start + rng.gen_range(0..heap_len)
                };
                machine.prefetch(enclave.id(), page..page + 1).unwrap();
            }
        }
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_lookup",
            &table,
            &mut CallData::new(key),
        )
        .unwrap();
    }
    (
        machine.clock().now() - before,
        page_ins.load(Ordering::SeqCst),
    )
}

fn main() {
    banner("A2", "EPC paging: eviction policy and pre-loading (§3.5)");
    let calls = scaled_count(2_000, 300);
    row(
        "workload",
        format!("{calls} lookups x 16 touches, 90% into a 64-page hot set of a 256-page heap"),
    );
    println!(
        "\n  {:<14} {:<8} {:<10} {:>14} {:>12}",
        "EPC pages", "policy", "preload", "elapsed", "page-ins"
    );
    for epc in [48usize, 96, 192, 320, 512] {
        for policy in [EvictionPolicy::Fifo, EvictionPolicy::Lru] {
            let (time, ins) = scan_run(epc, policy, calls, false);
            println!(
                "  {:<14} {:<8} {:<10} {:>14} {:>12}",
                epc,
                format!("{policy:?}"),
                "no",
                time.to_string(),
                ins
            );
        }
    }
    println!();
    for preload in [false, true] {
        let (time, ins) = scan_run(96, EvictionPolicy::Lru, calls, preload);
        println!(
            "  {:<14} {:<8} {:<10} {:>14} {:>12}",
            96,
            "Lru",
            if preload { "yes" } else { "no" },
            time.to_string(),
            ins
        );
    }
    println!("\n  expectation: more EPC => fewer page-ins; LRU beats FIFO under the");
    println!("  skewed pattern; pre-loading keeps the fault count but removes the");
    println!("  in-enclave AEXs, shortening the run (the paper's mitigation (ii)).");
}
