//! Deterministic cooperative logical threads.
//!
//! Multi-threaded SGX workloads (e.g. SecureKeeper's client handlers
//! contending on an in-enclave mutex) need real concurrency *semantics* —
//! parking, waking, interleaving — but the reproduction must stay
//! bit-deterministic. This crate provides logical threads backed by OS
//! threads that are token-scheduled: **exactly one logical thread runs at a
//! time**, and scheduling decisions are pure round-robin over a FIFO run
//! queue, so the interleaving is a deterministic function of the program.
//!
//! Logical threads cooperate through explicit scheduling points:
//! [`SimCtx::yield_now`], [`SimCtx::park`]/[`SimCtx::unpark`] and
//! [`SimCtx::sleep`]. Sleeping integrates with the shared virtual
//! [`Clock`]: when every runnable thread is asleep, the
//! scheduler advances the clock to the earliest deadline.
//!
//! # Examples
//!
//! ```
//! use sim_core::{Clock, Nanos};
//! use sim_threads::Simulation;
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! let clock = Clock::new();
//! let sim = Simulation::new(clock.clone());
//! let counter = Arc::new(AtomicU32::new(0));
//! for _ in 0..3 {
//!     let counter = Arc::clone(&counter);
//!     sim.spawn("worker", move |ctx| {
//!         for _ in 0..10 {
//!             counter.fetch_add(1, Ordering::SeqCst);
//!             ctx.yield_now();
//!         }
//!     });
//! }
//! sim.run();
//! assert_eq!(counter.load(Ordering::SeqCst), 30);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use sim_core::sync::{Condvar, Mutex};
use sim_core::syncev::{SyncBus, SyncOp, EXTERNAL_THREAD};
use sim_core::{Clock, Nanos};

/// Identifier of a logical thread within one [`Simulation`].
///
/// Ids are dense, assigned in spawn order starting from 0, and are what the
/// SGX SDK simulation records as the "thread id" in trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalThreadId(pub usize);

impl fmt::Display for LogicalThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lt{}", self.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Waiting in the run queue.
    Runnable,
    /// Currently holding the execution token.
    Running,
    /// Parked until another thread unparks it.
    Parked,
    /// Sleeping until the virtual clock reaches the deadline.
    Sleeping(Nanos),
    /// Finished (normally or by panic).
    Done,
}

struct ThreadEntry {
    name: String,
    status: Status,
    /// Pending unpark permit (like `std::thread::park`'s token) so that an
    /// unpark delivered before the park is not lost.
    permit: bool,
}

struct SchedState {
    threads: Vec<ThreadEntry>,
    run_queue: VecDeque<usize>,
    current: Option<usize>,
    started: bool,
    panic: Option<String>,
}

struct Shared {
    state: Mutex<SchedState>,
    cond: Condvar,
    clock: Clock,
    /// Sync-event channel for thread spawn/join edges (see
    /// [`sim_core::syncev`]); unset simulations emit nothing.
    sync_bus: Mutex<Option<Arc<SyncBus>>>,
}

impl Shared {
    fn bus(&self) -> Option<Arc<SyncBus>> {
        self.sync_bus.lock().clone()
    }
}

impl Shared {
    /// Picks the next thread to run. Must be called with the lock held and
    /// `current` already vacated. Wakes sleepers by advancing the clock when
    /// the run queue is empty.
    ///
    /// Returns `false` if nothing is left to run (all done, or deadlock —
    /// which is recorded as a panic message).
    fn dispatch_next(&self, st: &mut SchedState) -> bool {
        loop {
            if let Some(next) = st.run_queue.pop_front() {
                st.threads[next].status = Status::Running;
                st.current = Some(next);
                self.cond.notify_all();
                return true;
            }
            // Run queue empty: try waking sleepers by advancing time.
            let earliest = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t.status {
                    Status::Sleeping(dl) => Some((dl, i)),
                    _ => None,
                })
                .min();
            match earliest {
                Some((deadline, _)) => {
                    self.clock.advance_to(deadline);
                    let now = self.clock.now();
                    // Wake all sleepers whose deadline has passed, in id
                    // order, to keep scheduling deterministic.
                    for i in 0..st.threads.len() {
                        if let Status::Sleeping(dl) = st.threads[i].status {
                            if dl <= now {
                                st.threads[i].status = Status::Runnable;
                                st.run_queue.push_back(i);
                            }
                        }
                    }
                }
                None => {
                    st.current = None;
                    let stuck: Vec<&str> = st
                        .threads
                        .iter()
                        .filter(|t| t.status == Status::Parked)
                        .map(|t| t.name.as_str())
                        .collect();
                    if !stuck.is_empty() && st.panic.is_none() {
                        st.panic = Some(format!(
                            "deadlock: all runnable threads exhausted while {stuck:?} remain parked"
                        ));
                    }
                    self.cond.notify_all();
                    return false;
                }
            }
        }
    }
}

/// A deterministic multi-threaded simulation.
///
/// Spawn logical threads with [`Simulation::spawn`], then drive them to
/// completion with [`Simulation::run`]. See the [crate docs](crate) for the
/// scheduling model.
pub struct Simulation {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("Simulation")
            .field("threads", &st.threads.len())
            .field("started", &st.started)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation driven by the given virtual clock.
    pub fn new(clock: Clock) -> Self {
        Simulation {
            shared: Arc::new(Shared {
                state: Mutex::new(SchedState {
                    threads: Vec::new(),
                    run_queue: VecDeque::new(),
                    current: None,
                    started: false,
                    panic: None,
                }),
                cond: Condvar::new(),
                clock,
                sync_bus: Mutex::new(None),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The clock this simulation advances.
    pub fn clock(&self) -> &Clock {
        &self.shared.clock
    }

    /// Routes thread spawn/join events to `bus` so the race analysis sees
    /// the happens-before edges the scheduler creates.
    pub fn set_sync_bus(&self, bus: Arc<SyncBus>) {
        *self.shared.sync_bus.lock() = Some(bus);
    }

    /// Spawns a logical thread. The closure receives a [`SimCtx`] giving it
    /// access to scheduling operations; it begins executing only once
    /// [`Simulation::run`] dispatches it (threads may also be spawned from
    /// inside a running logical thread).
    pub fn spawn<F>(&self, name: &str, f: F) -> LogicalThreadId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        let (index, parent) = {
            let mut st = shared.state.lock();
            let index = st.threads.len();
            st.threads.push(ThreadEntry {
                name: name.to_string(),
                status: Status::Runnable,
                permit: false,
            });
            st.run_queue.push_back(index);
            (index, st.current)
        };
        if let Some(bus) = self.shared.bus() {
            let parent = parent.map_or(EXTERNAL_THREAD, |p| p as u64);
            bus.emit(
                parent,
                SyncOp::ThreadSpawn,
                None,
                Some(index as u64),
                0,
                name,
            );
        }
        let thread_shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let ctx = SimCtx {
                    shared: thread_shared,
                    index,
                };
                // Wait for our first dispatch.
                {
                    let mut st = ctx.shared.state.lock();
                    while st.current != Some(index) {
                        if st.panic.is_some() {
                            // Simulation is tearing down before we ever ran.
                            st.threads[index].status = Status::Done;
                            ctx.shared.cond.notify_all();
                            return;
                        }
                        ctx.shared.cond.wait(&mut st);
                    }
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                if let Some(bus) = ctx.shared.bus() {
                    bus.emit(index as u64, SyncOp::ThreadJoin, None, None, 0, "");
                }
                let mut st = ctx.shared.state.lock();
                st.threads[index].status = Status::Done;
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "logical thread panicked".to_string());
                    if st.panic.is_none() {
                        st.panic = Some(msg);
                    }
                }
                st.current = None;
                ctx.shared.dispatch_next(&mut st);
            })
            .expect("failed to spawn OS thread backing a logical thread");
        self.handles.lock().push(handle);
        LogicalThreadId(index)
    }

    /// Runs all spawned logical threads to completion under round-robin
    /// scheduling.
    ///
    /// # Panics
    ///
    /// Panics if any logical thread panicked, or if the simulation
    /// deadlocked (every remaining thread parked with nobody to unpark it).
    pub fn run(&self) {
        {
            let mut st = self.shared.state.lock();
            assert!(!st.started, "Simulation::run called twice");
            st.started = true;
            if !self.shared.dispatch_next(&mut st) {
                // No threads were spawned.
            }
        }
        // Wait for completion: all threads Done.
        {
            let mut st = self.shared.state.lock();
            while !st.threads.iter().all(|t| t.status == Status::Done) {
                if st.panic.is_some()
                    && st.current.is_none()
                    && st.run_queue.is_empty()
                    && !st
                        .threads
                        .iter()
                        .any(|t| matches!(t.status, Status::Sleeping(_)))
                {
                    break; // deadlock: remaining threads will never finish
                }
                self.shared.cond.wait(&mut st);
            }
        }
        let panic_msg = self.shared.state.lock().panic.clone();
        if let Some(msg) = panic_msg {
            // Let parked threads exit before propagating.
            self.shared.cond.notify_all();
            for h in self.handles.lock().drain(..) {
                let _ = h.join();
            }
            panic!("simulation failed: {msg}");
        }
        for h in self.handles.lock().drain(..) {
            h.join().expect("logical thread OS join failed");
        }
    }
}

/// Handle passed to each logical thread giving it scheduling operations.
///
/// All methods are *scheduling points*: control may transfer to another
/// logical thread and only return here later (at a later virtual time).
pub struct SimCtx {
    shared: Arc<Shared>,
    index: usize,
}

impl fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimCtx({})", self.id())
    }
}

impl SimCtx {
    /// This logical thread's id.
    pub fn id(&self) -> LogicalThreadId {
        LogicalThreadId(self.index)
    }

    /// The simulation's virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.shared.clock
    }

    /// Re-enqueues this thread and lets the next runnable thread execute.
    pub fn yield_now(&self) {
        let mut st = self.shared.state.lock();
        st.threads[self.index].status = Status::Runnable;
        st.run_queue.push_back(self.index);
        st.current = None;
        self.shared.dispatch_next(&mut st);
        self.wait_for_token(st);
    }

    /// Blocks this thread until another thread [`unpark`](SimCtx::unpark)s
    /// it. If an unpark permit is already pending, returns immediately
    /// (consuming the permit) without a context switch.
    pub fn park(&self) {
        let mut st = self.shared.state.lock();
        if st.threads[self.index].permit {
            st.threads[self.index].permit = false;
            return;
        }
        st.threads[self.index].status = Status::Parked;
        st.current = None;
        self.shared.dispatch_next(&mut st);
        self.wait_for_token(st);
        // Consumed implicitly: the unparker moved us to the run queue.
    }

    /// Makes `target` runnable again (or leaves a permit if it is not
    /// currently parked). Does not switch control.
    pub fn unpark(&self, target: LogicalThreadId) {
        let mut st = self.shared.state.lock();
        let entry = st
            .threads
            .get(target.0)
            .unwrap_or_else(|| panic!("unpark of unknown thread {target}"));
        match entry.status {
            Status::Parked => {
                st.threads[target.0].status = Status::Runnable;
                st.run_queue.push_back(target.0);
            }
            Status::Done => {}
            _ => st.threads[target.0].permit = true,
        }
    }

    /// Sleeps until the virtual clock reaches `deadline`.
    pub fn sleep_until(&self, deadline: Nanos) {
        let mut st = self.shared.state.lock();
        if self.shared.clock.now() >= deadline {
            return;
        }
        st.threads[self.index].status = Status::Sleeping(deadline);
        st.current = None;
        self.shared.dispatch_next(&mut st);
        self.wait_for_token(st);
    }

    /// Sleeps for `dur` of virtual time.
    pub fn sleep(&self, dur: Nanos) {
        let deadline = self.shared.clock.now() + dur;
        self.sleep_until(deadline);
    }

    fn wait_for_token(&self, mut st: sim_core::sync::MutexGuard<'_, SchedState>) {
        while st.current != Some(self.index) {
            if st.panic.is_some() && st.current.is_none() && st.run_queue.is_empty() {
                // Simulation is dead; unwind this thread quietly.
                drop(st);
                panic!("simulation aborted");
            }
            self.shared.cond.wait(&mut st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sim() -> Simulation {
        Simulation::new(Clock::new())
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let s = sim();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        s.spawn("t", move |_| {
            r.store(1, Ordering::SeqCst);
        });
        s.run();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn round_robin_interleaving_is_deterministic() {
        // Two threads each append their id at every yield; the interleaving
        // must be strictly alternating and identical across runs.
        fn trace() -> Vec<usize> {
            let s = sim();
            let log = Arc::new(Mutex::new(Vec::new()));
            for id in 0..2 {
                let log = Arc::clone(&log);
                s.spawn("t", move |ctx| {
                    for _ in 0..5 {
                        log.lock().push(id);
                        ctx.yield_now();
                    }
                });
            }
            s.run();
            let guard = log.lock();
            guard.clone()
        }
        let a = trace();
        let b = trace();
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn park_unpark_handoff() {
        let s = sim();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let waiter = s.spawn("waiter", move |ctx| {
            o1.lock().push("before park");
            ctx.park();
            o1.lock().push("after park");
        });
        let o2 = Arc::clone(&order);
        s.spawn("waker", move |ctx| {
            o2.lock().push("waking");
            ctx.unpark(waiter);
        });
        s.run();
        let got = order.lock().clone();
        assert_eq!(got, vec!["before park", "waking", "after park"]);
    }

    #[test]
    fn unpark_before_park_leaves_permit() {
        let s = sim();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        // Thread 0 parks *after* thread 1 has already unparked it.
        let t0 = s.spawn("t0", move |ctx| {
            ctx.yield_now(); // let t1 run first
            ctx.park(); // permit pending: must not block
            h.store(1, Ordering::SeqCst);
        });
        s.spawn("t1", move |ctx| {
            ctx.unpark(t0);
        });
        s.run();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let clock = Clock::new();
        let s = Simulation::new(clock.clone());
        s.spawn("sleeper", move |ctx| {
            ctx.sleep(Nanos::from_millis(5));
        });
        s.run();
        assert_eq!(clock.now(), Nanos::from_millis(5));
    }

    #[test]
    fn sleepers_wake_in_deadline_order() {
        let clock = Clock::new();
        let s = Simulation::new(clock.clone());
        let log = Arc::new(Mutex::new(Vec::new()));
        for (name, ms) in [("late", 10u64), ("early", 2)] {
            let log = Arc::clone(&log);
            let c = clock.clone();
            s.spawn(name, move |ctx| {
                ctx.sleep(Nanos::from_millis(ms));
                log.lock().push((name, c.now().as_millis_f64() as u64));
            });
        }
        s.run();
        let got = log.lock().clone();
        assert_eq!(got, vec![("early", 2), ("late", 10)]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let s = sim();
        s.spawn("stuck", |ctx| ctx.park());
        s.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn thread_panic_propagates() {
        let s = sim();
        s.spawn("bad", |_| panic!("boom"));
        s.run();
    }

    #[test]
    fn spawn_from_running_thread() {
        let s = Arc::new(sim());
        let s2 = Arc::clone(&s);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        s.spawn("parent", move |ctx| {
            let c2 = Arc::clone(&c);
            s2.spawn("child", move |_| {
                c2.fetch_add(10, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            ctx.yield_now();
        });
        s.run();
        assert_eq!(count.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn many_threads_complete() {
        let s = sim();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = Arc::clone(&count);
            s.spawn("w", move |ctx| {
                for _ in 0..8 {
                    c.fetch_add(1, Ordering::SeqCst);
                    ctx.yield_now();
                }
            });
        }
        s.run();
        assert_eq!(count.load(Ordering::SeqCst), 32 * 8);
    }
}
