//! Deterministic cooperative logical threads.
//!
//! Multi-threaded SGX workloads (e.g. SecureKeeper's client handlers
//! contending on an in-enclave mutex) need real concurrency *semantics* —
//! parking, waking, interleaving — but the reproduction must stay
//! bit-deterministic. This crate provides logical threads scheduled
//! cooperatively: **exactly one logical thread runs at a time**, and
//! scheduling decisions are pure round-robin over a FIFO run queue, so the
//! interleaving is a deterministic function of the program.
//!
//! Logical threads cooperate through explicit scheduling points:
//! [`SimCtx::yield_now`], [`SimCtx::park`]/[`SimCtx::unpark`] and
//! [`SimCtx::sleep`]. Sleeping integrates with the shared virtual
//! [`Clock`]: when every runnable thread is asleep, the
//! scheduler advances the clock to the earliest deadline.
//!
//! # Engines
//!
//! Two interchangeable execution engines implement the same scheduling
//! model ([`Engine`]):
//!
//! * [`Engine::Fast`] (the default) runs every logical thread as a
//!   stackful coroutine on the **single OS thread** that calls
//!   [`Simulation::run`]. A scheduling point is a user-space context
//!   switch — a few dozen nanoseconds, no parking syscalls, no condvar
//!   round-trips — which makes simulation throughput 10–100× higher.
//! * [`Engine::Legacy`] backs each logical thread with a real OS thread
//!   and passes an execution token over a condvar. It is kept as the
//!   differential oracle: for every program, both engines must produce
//!   the same interleaving, the same virtual-clock trajectory, and hence
//!   byte-identical traces (the `engine_diff` suite asserts this).
//!
//! Selection: [`Simulation::new`] honours a scoped [`with_engine`]
//! override first, then the `SGXPERF_SIM_ENGINE` environment variable
//! (`fast` or `legacy`), and defaults to [`Engine::Fast`].
//! [`Simulation::with_engine_kind`] pins an engine explicitly.
//!
//! # Examples
//!
//! ```
//! use sim_core::{Clock, Nanos};
//! use sim_threads::Simulation;
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! let clock = Clock::new();
//! let sim = Simulation::new(clock.clone());
//! let counter = Arc::new(AtomicU32::new(0));
//! for _ in 0..3 {
//!     let counter = Arc::clone(&counter);
//!     sim.spawn("worker", move |ctx| {
//!         for _ in 0..10 {
//!             counter.fetch_add(1, Ordering::SeqCst);
//!             ctx.yield_now();
//!         }
//!     });
//! }
//! sim.run();
//! assert_eq!(counter.load(Ordering::SeqCst), 30);
//! ```

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sim_core::syncev::SyncBus;
use sim_core::{Clock, Nanos};

mod fast;
mod legacy;

/// Identifier of a logical thread within one [`Simulation`].
///
/// Ids are dense, assigned in spawn order starting from 0, and are what the
/// SGX SDK simulation records as the "thread id" in trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalThreadId(pub usize);

impl fmt::Display for LogicalThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lt{}", self.0)
    }
}

/// Which execution engine backs a [`Simulation`] (see the
/// [crate docs](crate) for the trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// OS-thread token passing over a condvar — the original engine, kept
    /// as the differential oracle.
    Legacy,
    /// Single-OS-thread stackful coroutines — the fast path.
    #[default]
    Fast,
}

impl Engine {
    /// Parses an engine name as used by `SGXPERF_SIM_ENGINE` and CLI
    /// flags. Returns `None` for unknown names.
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "legacy" | "threads" => Some(Engine::Legacy),
            "fast" | "coroutine" => Some(Engine::Fast),
            _ => None,
        }
    }

    /// Label used in bench output and file names.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Legacy => "legacy",
            Engine::Fast => "fast",
        }
    }

    /// The engine [`Simulation::new`] picks on this thread right now:
    /// scoped [`with_engine`] override, then `SGXPERF_SIM_ENGINE`, then
    /// [`Engine::Fast`].
    pub fn current() -> Engine {
        if let Some(e) = ENGINE_OVERRIDE.with(|o| o.get()) {
            return e;
        }
        std::env::var("SGXPERF_SIM_ENGINE")
            .ok()
            .and_then(|v| Engine::parse(&v))
            .unwrap_or_default()
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

thread_local! {
    static ENGINE_OVERRIDE: Cell<Option<Engine>> = const { Cell::new(None) };
    static BUDGET_OVERRIDE: RefCell<Option<Arc<SimBudget>>> = const { RefCell::new(None) };
}

/// Panic message raised at a scheduling point once a [`SimBudget`]'s
/// event allowance is spent. Supervisors match on it to classify the
/// failure as a (deterministic, virtual-time) timeout.
pub const EVENT_BUDGET_EXHAUSTED: &str = "simulation event budget exhausted";

/// Panic message raised at the first scheduling point after
/// [`SimBudget::cancel`] — the cooperative path a wall-clock watchdog
/// uses to unwind a hung simulation without abandoning its thread.
pub const SIM_CANCELLED: &str = "simulation cancelled by supervisor";

/// A shared supervision handle charged at every scheduling point.
///
/// Install one around a workload with [`with_budget`]; every
/// [`Simulation`] subsequently created on that thread captures the
/// handle, and **all** of them draw from the same pool — the budget
/// bounds the whole cell, not a single simulation. Because both engines
/// produce identical interleavings, the pool drains identically on both,
/// so exhaustion is a deterministic event: same scheduling point, same
/// panic message, either engine.
///
/// The handle also carries a cancellation flag: [`SimBudget::cancel`]
/// (typically called from a watchdog thread when a wall-clock deadline
/// passes) makes the simulation panic at its next scheduling point, so a
/// hung-but-still-scheduling cell unwinds cooperatively instead of
/// leaving a runaway OS thread behind.
#[derive(Debug)]
pub struct SimBudget {
    /// Remaining scheduling-point charges; `u64::MAX` means unlimited.
    events: AtomicU64,
    cancelled: AtomicBool,
}

impl SimBudget {
    /// A handle with no event cap — useful when only cancellation is
    /// needed (pure wall-clock supervision).
    pub fn unlimited() -> Arc<SimBudget> {
        SimBudget::with_events(u64::MAX)
    }

    /// A handle allowing `events` scheduling points across every
    /// simulation that captures it.
    pub fn with_events(events: u64) -> Arc<SimBudget> {
        Arc::new(SimBudget {
            events: AtomicU64::new(events),
            cancelled: AtomicBool::new(false),
        })
    }

    /// Requests cooperative cancellation: the owning simulation panics
    /// with [`SIM_CANCELLED`] at its next scheduling point.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether [`SimBudget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Charges one scheduling point. Exactly one logical thread runs at
    /// a time, so charges are totally ordered and the panic point is
    /// deterministic.
    pub(crate) fn charge(&self) {
        if self.cancelled.load(Ordering::SeqCst) {
            panic!("{SIM_CANCELLED}");
        }
        let left = self.events.load(Ordering::SeqCst);
        if left == u64::MAX {
            return; // unlimited
        }
        if left == 0 {
            panic!("{EVENT_BUDGET_EXHAUSTED}");
        }
        self.events.store(left - 1, Ordering::SeqCst);
    }
}

/// Runs `f` with every [`Simulation`] created on **this thread** charged
/// against `budget` — the campaign supervisor's hook for bounding a cell
/// in virtual events and cancelling it on a wall-clock deadline.
/// Restores the previous handle on exit, including on panic.
pub fn with_budget<R>(budget: Arc<SimBudget>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<SimBudget>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET_OVERRIDE.with(|b| *b.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(BUDGET_OVERRIDE.with(|b| b.borrow_mut().replace(budget)));
    f()
}

/// The budget [`Simulation`] constructors capture on this thread.
pub(crate) fn current_budget() -> Option<Arc<SimBudget>> {
    BUDGET_OVERRIDE.with(|b| b.borrow().clone())
}

/// Runs `f` with every [`Simulation::new`] on **this thread** pinned to
/// `engine` — the hook the differential tests and the campaign runner use
/// to drive workloads (which construct their own simulations internally)
/// on a chosen engine. Restores the previous override on exit, including
/// on panic.
pub fn with_engine<R>(engine: Engine, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Engine>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ENGINE_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(ENGINE_OVERRIDE.with(|o| o.replace(Some(engine))));
    f()
}

enum SimImpl {
    Legacy(legacy::Sim),
    Fast(fast::Sim),
}

/// A deterministic multi-threaded simulation.
///
/// Spawn logical threads with [`Simulation::spawn`], then drive them to
/// completion with [`Simulation::run`]. See the [crate docs](crate) for the
/// scheduling model and the engine choice.
pub struct Simulation {
    inner: SimImpl,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (threads, started) = match &self.inner {
            SimImpl::Legacy(s) => s.debug_fields(),
            SimImpl::Fast(s) => s.debug_fields(),
        };
        f.debug_struct("Simulation")
            .field("engine", &self.engine())
            .field("threads", &threads)
            .field("started", &started)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation driven by the given virtual clock, on the
    /// engine [`Engine::current`] selects.
    pub fn new(clock: Clock) -> Self {
        Simulation::with_engine_kind(clock, Engine::current())
    }

    /// Creates a simulation pinned to an explicit engine.
    pub fn with_engine_kind(clock: Clock, engine: Engine) -> Self {
        let inner = match engine {
            Engine::Legacy => SimImpl::Legacy(legacy::Sim::new(clock)),
            Engine::Fast => SimImpl::Fast(fast::Sim::new(clock)),
        };
        Simulation { inner }
    }

    /// The engine backing this simulation.
    pub fn engine(&self) -> Engine {
        match &self.inner {
            SimImpl::Legacy(_) => Engine::Legacy,
            SimImpl::Fast(_) => Engine::Fast,
        }
    }

    /// The clock this simulation advances.
    pub fn clock(&self) -> &Clock {
        match &self.inner {
            SimImpl::Legacy(s) => s.clock(),
            SimImpl::Fast(s) => s.clock(),
        }
    }

    /// Routes thread spawn/join events to `bus` so the race analysis sees
    /// the happens-before edges the scheduler creates.
    pub fn set_sync_bus(&self, bus: Arc<SyncBus>) {
        match &self.inner {
            SimImpl::Legacy(s) => s.set_sync_bus(bus),
            SimImpl::Fast(s) => s.set_sync_bus(bus),
        }
    }

    /// Spawns a logical thread. The closure receives a [`SimCtx`] giving it
    /// access to scheduling operations; it begins executing only once
    /// [`Simulation::run`] dispatches it (threads may also be spawned from
    /// inside a running logical thread).
    pub fn spawn<F>(&self, name: &str, f: F) -> LogicalThreadId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        match &self.inner {
            SimImpl::Legacy(s) => s.spawn(name, f),
            SimImpl::Fast(s) => s.spawn(name, f),
        }
    }

    /// Runs all spawned logical threads to completion under round-robin
    /// scheduling.
    ///
    /// # Panics
    ///
    /// Panics if any logical thread panicked, or if the simulation
    /// deadlocked (every remaining thread parked with nobody to unpark it).
    pub fn run(&self) {
        match &self.inner {
            SimImpl::Legacy(s) => s.run(),
            SimImpl::Fast(s) => s.run(),
        }
    }
}

enum CtxImpl {
    Legacy(legacy::Ctx),
    Fast(fast::Ctx),
}

/// Handle passed to each logical thread giving it scheduling operations.
///
/// All methods are *scheduling points*: control may transfer to another
/// logical thread and only return here later (at a later virtual time).
pub struct SimCtx {
    inner: CtxImpl,
}

impl fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimCtx({})", self.id())
    }
}

impl SimCtx {
    pub(crate) fn from_legacy(ctx: legacy::Ctx) -> SimCtx {
        SimCtx {
            inner: CtxImpl::Legacy(ctx),
        }
    }

    pub(crate) fn from_fast(ctx: fast::Ctx) -> SimCtx {
        SimCtx {
            inner: CtxImpl::Fast(ctx),
        }
    }

    /// This logical thread's id.
    pub fn id(&self) -> LogicalThreadId {
        match &self.inner {
            CtxImpl::Legacy(c) => c.id(),
            CtxImpl::Fast(c) => c.id(),
        }
    }

    /// The simulation's virtual clock.
    pub fn clock(&self) -> &Clock {
        match &self.inner {
            CtxImpl::Legacy(c) => c.clock(),
            CtxImpl::Fast(c) => c.clock(),
        }
    }

    /// Re-enqueues this thread and lets the next runnable thread execute.
    pub fn yield_now(&self) {
        match &self.inner {
            CtxImpl::Legacy(c) => c.yield_now(),
            CtxImpl::Fast(c) => c.yield_now(),
        }
    }

    /// Blocks this thread until another thread [`unpark`](SimCtx::unpark)s
    /// it. If an unpark permit is already pending, returns immediately
    /// (consuming the permit) without a context switch.
    pub fn park(&self) {
        match &self.inner {
            CtxImpl::Legacy(c) => c.park(),
            CtxImpl::Fast(c) => c.park(),
        }
    }

    /// Makes `target` runnable again (or leaves a permit if it is not
    /// currently parked). Does not switch control.
    pub fn unpark(&self, target: LogicalThreadId) {
        match &self.inner {
            CtxImpl::Legacy(c) => c.unpark(target),
            CtxImpl::Fast(c) => c.unpark(target),
        }
    }

    /// Sleeps until the virtual clock reaches `deadline`.
    pub fn sleep_until(&self, deadline: Nanos) {
        match &self.inner {
            CtxImpl::Legacy(c) => c.sleep_until(deadline),
            CtxImpl::Fast(c) => c.sleep_until(deadline),
        }
    }

    /// Sleeps for `dur` of virtual time.
    pub fn sleep(&self, dur: Nanos) {
        let deadline = self.clock().now() + dur;
        self.sleep_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::sync::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const ENGINES: [Engine; 2] = [Engine::Legacy, Engine::Fast];

    fn sim(engine: Engine) -> Simulation {
        Simulation::with_engine_kind(Clock::new(), engine)
    }

    #[test]
    fn single_thread_runs_to_completion() {
        for engine in ENGINES {
            let s = sim(engine);
            let ran = Arc::new(AtomicUsize::new(0));
            let r = Arc::clone(&ran);
            s.spawn("t", move |_| {
                r.store(1, Ordering::SeqCst);
            });
            s.run();
            assert_eq!(ran.load(Ordering::SeqCst), 1, "{engine}");
        }
    }

    #[test]
    fn round_robin_interleaving_is_deterministic() {
        // Two threads each append their id at every yield; the interleaving
        // must be strictly alternating and identical across runs and
        // engines.
        fn trace(engine: Engine) -> Vec<usize> {
            let s = sim(engine);
            let log = Arc::new(Mutex::new(Vec::new()));
            for id in 0..2 {
                let log = Arc::clone(&log);
                s.spawn("t", move |ctx| {
                    for _ in 0..5 {
                        log.lock().push(id);
                        ctx.yield_now();
                    }
                });
            }
            s.run();
            let guard = log.lock();
            guard.clone()
        }
        for engine in ENGINES {
            let a = trace(engine);
            let b = trace(engine);
            assert_eq!(a, b, "{engine}");
            assert_eq!(a, vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1], "{engine}");
        }
    }

    #[test]
    fn park_unpark_handoff() {
        for engine in ENGINES {
            let s = sim(engine);
            let order = Arc::new(Mutex::new(Vec::new()));
            let o1 = Arc::clone(&order);
            let waiter = s.spawn("waiter", move |ctx| {
                o1.lock().push("before park");
                ctx.park();
                o1.lock().push("after park");
            });
            let o2 = Arc::clone(&order);
            s.spawn("waker", move |ctx| {
                o2.lock().push("waking");
                ctx.unpark(waiter);
            });
            s.run();
            let got = order.lock().clone();
            assert_eq!(got, vec!["before park", "waking", "after park"], "{engine}");
        }
    }

    #[test]
    fn unpark_before_park_leaves_permit() {
        for engine in ENGINES {
            let s = sim(engine);
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            // Thread 0 parks *after* thread 1 has already unparked it.
            let t0 = s.spawn("t0", move |ctx| {
                ctx.yield_now(); // let t1 run first
                ctx.park(); // permit pending: must not block
                h.store(1, Ordering::SeqCst);
            });
            s.spawn("t1", move |ctx| {
                ctx.unpark(t0);
            });
            s.run();
            assert_eq!(hits.load(Ordering::SeqCst), 1, "{engine}");
        }
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        for engine in ENGINES {
            let clock = Clock::new();
            let s = Simulation::with_engine_kind(clock.clone(), engine);
            s.spawn("sleeper", move |ctx| {
                ctx.sleep(Nanos::from_millis(5));
            });
            s.run();
            assert_eq!(clock.now(), Nanos::from_millis(5), "{engine}");
        }
    }

    #[test]
    fn sleepers_wake_in_deadline_order() {
        for engine in ENGINES {
            let clock = Clock::new();
            let s = Simulation::with_engine_kind(clock.clone(), engine);
            let log = Arc::new(Mutex::new(Vec::new()));
            for (name, ms) in [("late", 10u64), ("early", 2)] {
                let log = Arc::clone(&log);
                let c = clock.clone();
                s.spawn(name, move |ctx| {
                    ctx.sleep(Nanos::from_millis(ms));
                    log.lock().push((name, c.now().as_millis_f64() as u64));
                });
            }
            s.run();
            let got = log.lock().clone();
            assert_eq!(got, vec![("early", 2), ("late", 10)], "{engine}");
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_legacy() {
        let s = sim(Engine::Legacy);
        s.spawn("stuck", |ctx| ctx.park());
        s.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_fast() {
        let s = sim(Engine::Fast);
        s.spawn("stuck", |ctx| ctx.park());
        s.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn thread_panic_propagates_legacy() {
        let s = sim(Engine::Legacy);
        s.spawn("bad", |_| panic!("boom"));
        s.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn thread_panic_propagates_fast() {
        let s = sim(Engine::Fast);
        s.spawn("bad", |_| panic!("boom"));
        s.run();
    }

    #[test]
    fn spawn_from_running_thread() {
        for engine in ENGINES {
            let s = Arc::new(sim(engine));
            let s2 = Arc::clone(&s);
            let count = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&count);
            s.spawn("parent", move |ctx| {
                let c2 = Arc::clone(&c);
                s2.spawn("child", move |_| {
                    c2.fetch_add(10, Ordering::SeqCst);
                });
                c.fetch_add(1, Ordering::SeqCst);
                ctx.yield_now();
            });
            s.run();
            assert_eq!(count.load(Ordering::SeqCst), 11, "{engine}");
        }
    }

    #[test]
    fn many_threads_complete() {
        for engine in ENGINES {
            let s = sim(engine);
            let count = Arc::new(AtomicUsize::new(0));
            for _ in 0..32 {
                let c = Arc::clone(&count);
                s.spawn("w", move |ctx| {
                    for _ in 0..8 {
                        c.fetch_add(1, Ordering::SeqCst);
                        ctx.yield_now();
                    }
                });
            }
            s.run();
            assert_eq!(count.load(Ordering::SeqCst), 32 * 8, "{engine}");
        }
    }

    #[test]
    fn with_engine_overrides_and_restores() {
        assert_eq!(
            with_engine(Engine::Legacy, || Simulation::new(Clock::new()).engine()),
            Engine::Legacy
        );
        assert_eq!(
            with_engine(Engine::Fast, || Simulation::new(Clock::new()).engine()),
            Engine::Fast
        );
        // Nested overrides unwind in order.
        with_engine(Engine::Legacy, || {
            assert_eq!(Engine::current(), Engine::Legacy);
            with_engine(Engine::Fast, || {
                assert_eq!(Engine::current(), Engine::Fast);
            });
            assert_eq!(Engine::current(), Engine::Legacy);
        });
    }

    /// Runs a two-thread spin under a budget of `events` scheduling
    /// points and returns the panic message, if any.
    fn spin_under_budget(engine: Engine, events: u64) -> Result<(), String> {
        let budget = SimBudget::with_events(events);
        std::panic::catch_unwind(|| {
            with_budget(budget, || {
                let s = sim(engine);
                for _ in 0..2 {
                    s.spawn("spin", |ctx| {
                        for _ in 0..50 {
                            ctx.yield_now();
                        }
                    });
                }
                s.run();
            });
        })
        .map_err(|p| {
            p.downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default()
        })
    }

    #[test]
    fn event_budget_exhaustion_is_identical_across_engines() {
        for engine in ENGINES {
            // Plenty of budget: the spin completes.
            assert_eq!(spin_under_budget(engine, 1000), Ok(()), "{engine}");
            // Starved: both engines fail with the budget message.
            let err = spin_under_budget(engine, 10).unwrap_err();
            assert!(err.contains(EVENT_BUDGET_EXHAUSTED), "{engine}: {err}");
        }
        // The exact survivable threshold matches across engines: binary
        // search the smallest budget that completes, per engine.
        let threshold = |engine: Engine| {
            (0..200)
                .find(|&n| spin_under_budget(engine, n).is_ok())
                .expect("spin must complete under some budget")
        };
        assert_eq!(threshold(Engine::Fast), threshold(Engine::Legacy));
    }

    #[test]
    fn cancellation_unwinds_at_the_next_scheduling_point() {
        for engine in ENGINES {
            let budget = SimBudget::unlimited();
            budget.cancel();
            let err = std::panic::catch_unwind(|| {
                with_budget(Arc::clone(&budget), || {
                    let s = sim(engine);
                    s.spawn("spin", |ctx| loop {
                        ctx.yield_now();
                    });
                    s.run();
                });
            })
            .map_err(|p| {
                p.downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_default()
            })
            .unwrap_err();
            assert!(err.contains(SIM_CANCELLED), "{engine}: {err}");
        }
    }

    #[test]
    fn with_budget_restores_on_exit() {
        assert!(current_budget().is_none());
        with_budget(SimBudget::with_events(5), || {
            assert!(current_budget().is_some());
            with_budget(SimBudget::unlimited(), || {
                assert!(current_budget().is_some());
            });
            assert!(current_budget().is_some());
        });
        assert!(current_budget().is_none());
    }

    #[test]
    fn engine_parse_round_trips() {
        for engine in ENGINES {
            assert_eq!(Engine::parse(engine.label()), Some(engine));
        }
        assert_eq!(Engine::parse("warp"), None);
    }

    #[test]
    fn fast_engine_reuses_stacks_across_threads() {
        // Far more logical threads than plausible simultaneous stacks: the
        // pool must recycle, and everything still completes.
        let s = sim(Engine::Fast);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..256 {
            let c = Arc::clone(&count);
            s.spawn("w", move |ctx| {
                c.fetch_add(1, Ordering::SeqCst);
                ctx.yield_now();
            });
        }
        s.run();
        assert_eq!(count.load(Ordering::SeqCst), 256);
    }
}
