//! The original execution engine: one OS thread per logical thread,
//! token-scheduled over a condvar.
//!
//! Exactly one logical thread holds the execution token at a time; every
//! scheduling point is a condvar round-trip (two OS context switches).
//! Correct and battle-tested, but slow — the fast coroutine engine
//! ([`crate::fast`]) replaces it as the default and this engine remains as
//! the differential oracle the `engine_diff` suite runs every workload
//! against.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use sim_core::sync::{Condvar, Mutex};
use sim_core::syncev::{SyncBus, SyncOp, EXTERNAL_THREAD};
use sim_core::{Clock, Nanos};

use crate::{LogicalThreadId, SimCtx};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Waiting in the run queue.
    Runnable,
    /// Currently holding the execution token.
    Running,
    /// Parked until another thread unparks it.
    Parked,
    /// Sleeping until the virtual clock reaches the deadline.
    Sleeping(Nanos),
    /// Finished (normally or by panic).
    Done,
}

struct ThreadEntry {
    name: String,
    status: Status,
    /// Pending unpark permit (like `std::thread::park`'s token) so that an
    /// unpark delivered before the park is not lost.
    permit: bool,
}

struct SchedState {
    threads: Vec<ThreadEntry>,
    run_queue: VecDeque<usize>,
    current: Option<usize>,
    started: bool,
    panic: Option<String>,
}

struct Shared {
    state: Mutex<SchedState>,
    cond: Condvar,
    clock: Clock,
    /// Sync-event channel for thread spawn/join edges (see
    /// [`sim_core::syncev`]); unset simulations emit nothing.
    sync_bus: Mutex<Option<Arc<SyncBus>>>,
    /// Supervision handle captured from [`crate::with_budget`] at
    /// construction (on the *installing* thread — TLS never crosses into
    /// the per-logical-thread OS threads); charged at every scheduling
    /// point.
    budget: Option<Arc<crate::SimBudget>>,
}

impl Shared {
    fn bus(&self) -> Option<Arc<SyncBus>> {
        self.sync_bus.lock().clone()
    }

    /// Picks the next thread to run. Must be called with the lock held and
    /// `current` already vacated. Wakes sleepers by advancing the clock when
    /// the run queue is empty.
    ///
    /// Returns `false` if nothing is left to run (all done, or deadlock —
    /// which is recorded as a panic message).
    fn dispatch_next(&self, st: &mut SchedState) -> bool {
        loop {
            if let Some(next) = st.run_queue.pop_front() {
                st.threads[next].status = Status::Running;
                st.current = Some(next);
                self.cond.notify_all();
                return true;
            }
            // Run queue empty: try waking sleepers by advancing time.
            let earliest = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t.status {
                    Status::Sleeping(dl) => Some((dl, i)),
                    _ => None,
                })
                .min();
            match earliest {
                Some((deadline, _)) => {
                    self.clock.advance_to(deadline);
                    let now = self.clock.now();
                    // Wake all sleepers whose deadline has passed, in id
                    // order, to keep scheduling deterministic.
                    for i in 0..st.threads.len() {
                        if let Status::Sleeping(dl) = st.threads[i].status {
                            if dl <= now {
                                st.threads[i].status = Status::Runnable;
                                st.run_queue.push_back(i);
                            }
                        }
                    }
                }
                None => {
                    st.current = None;
                    let stuck: Vec<&str> = st
                        .threads
                        .iter()
                        .filter(|t| t.status == Status::Parked)
                        .map(|t| t.name.as_str())
                        .collect();
                    if !stuck.is_empty() && st.panic.is_none() {
                        st.panic = Some(format!(
                            "deadlock: all runnable threads exhausted while {stuck:?} remain parked"
                        ));
                    }
                    self.cond.notify_all();
                    return false;
                }
            }
        }
    }
}

/// The OS-thread-backed simulation engine.
pub(crate) struct Sim {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Sim {
    pub(crate) fn new(clock: Clock) -> Self {
        Sim {
            shared: Arc::new(Shared {
                state: Mutex::new(SchedState {
                    threads: Vec::new(),
                    run_queue: VecDeque::new(),
                    current: None,
                    started: false,
                    panic: None,
                }),
                cond: Condvar::new(),
                clock,
                sync_bus: Mutex::new(None),
                budget: crate::current_budget(),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn debug_fields(&self) -> (usize, bool) {
        let st = self.shared.state.lock();
        (st.threads.len(), st.started)
    }

    pub(crate) fn clock(&self) -> &Clock {
        &self.shared.clock
    }

    pub(crate) fn set_sync_bus(&self, bus: Arc<SyncBus>) {
        *self.shared.sync_bus.lock() = Some(bus);
    }

    pub(crate) fn spawn<F>(&self, name: &str, f: F) -> LogicalThreadId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        let (index, parent) = {
            let mut st = shared.state.lock();
            let index = st.threads.len();
            st.threads.push(ThreadEntry {
                name: name.to_string(),
                status: Status::Runnable,
                permit: false,
            });
            st.run_queue.push_back(index);
            (index, st.current)
        };
        if let Some(bus) = self.shared.bus() {
            let parent = parent.map_or(EXTERNAL_THREAD, |p| p as u64);
            bus.emit(
                parent,
                SyncOp::ThreadSpawn,
                None,
                Some(index as u64),
                0,
                name,
            );
        }
        let thread_shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let ctx = Ctx {
                    shared: thread_shared,
                    index,
                };
                // Wait for our first dispatch.
                {
                    let mut st = ctx.shared.state.lock();
                    while st.current != Some(index) {
                        if st.panic.is_some() {
                            // Simulation is tearing down before we ever ran.
                            st.threads[index].status = Status::Done;
                            ctx.shared.cond.notify_all();
                            return;
                        }
                        ctx.shared.cond.wait(&mut st);
                    }
                }
                let shared = Arc::clone(&ctx.shared);
                let sim_ctx = SimCtx::from_legacy(ctx);
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&sim_ctx)));
                if let Some(bus) = shared.bus() {
                    bus.emit(index as u64, SyncOp::ThreadJoin, None, None, 0, "");
                }
                let mut st = shared.state.lock();
                st.threads[index].status = Status::Done;
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "logical thread panicked".to_string());
                    if st.panic.is_none() {
                        st.panic = Some(msg);
                    }
                }
                st.current = None;
                shared.dispatch_next(&mut st);
            })
            .expect("failed to spawn OS thread backing a logical thread");
        self.handles.lock().push(handle);
        LogicalThreadId(index)
    }

    pub(crate) fn run(&self) {
        {
            let mut st = self.shared.state.lock();
            assert!(!st.started, "Simulation::run called twice");
            st.started = true;
            if !self.shared.dispatch_next(&mut st) {
                // No threads were spawned.
            }
        }
        // Wait for completion: all threads Done.
        {
            let mut st = self.shared.state.lock();
            while !st.threads.iter().all(|t| t.status == Status::Done) {
                if st.panic.is_some()
                    && st.current.is_none()
                    && st.run_queue.is_empty()
                    && !st
                        .threads
                        .iter()
                        .any(|t| matches!(t.status, Status::Sleeping(_)))
                {
                    break; // deadlock: remaining threads will never finish
                }
                self.shared.cond.wait(&mut st);
            }
        }
        let panic_msg = self.shared.state.lock().panic.clone();
        if let Some(msg) = panic_msg {
            // Let parked threads exit before propagating.
            self.shared.cond.notify_all();
            for h in self.handles.lock().drain(..) {
                let _ = h.join();
            }
            panic!("simulation failed: {msg}");
        }
        for h in self.handles.lock().drain(..) {
            h.join().expect("logical thread OS join failed");
        }
    }
}

/// Per-logical-thread scheduling handle of the legacy engine.
pub(crate) struct Ctx {
    shared: Arc<Shared>,
    index: usize,
}

impl Ctx {
    pub(crate) fn id(&self) -> LogicalThreadId {
        LogicalThreadId(self.index)
    }

    pub(crate) fn clock(&self) -> &Clock {
        &self.shared.clock
    }

    /// Charges the supervision budget on entry to a scheduling point,
    /// before the state lock — the same placement as the fast engine, so
    /// budget exhaustion panics at the identical scheduling point on
    /// both.
    fn charge_budget(&self) {
        if let Some(budget) = &self.shared.budget {
            budget.charge();
        }
    }

    pub(crate) fn yield_now(&self) {
        self.charge_budget();
        let mut st = self.shared.state.lock();
        st.threads[self.index].status = Status::Runnable;
        st.run_queue.push_back(self.index);
        st.current = None;
        self.shared.dispatch_next(&mut st);
        self.wait_for_token(st);
    }

    pub(crate) fn park(&self) {
        self.charge_budget();
        let mut st = self.shared.state.lock();
        if st.threads[self.index].permit {
            st.threads[self.index].permit = false;
            return;
        }
        st.threads[self.index].status = Status::Parked;
        st.current = None;
        self.shared.dispatch_next(&mut st);
        self.wait_for_token(st);
        // Consumed implicitly: the unparker moved us to the run queue.
    }

    pub(crate) fn unpark(&self, target: LogicalThreadId) {
        let mut st = self.shared.state.lock();
        let entry = st
            .threads
            .get(target.0)
            .unwrap_or_else(|| panic!("unpark of unknown thread {target}"));
        match entry.status {
            Status::Parked => {
                st.threads[target.0].status = Status::Runnable;
                st.run_queue.push_back(target.0);
            }
            Status::Done => {}
            _ => st.threads[target.0].permit = true,
        }
    }

    pub(crate) fn sleep_until(&self, deadline: Nanos) {
        self.charge_budget();
        let mut st = self.shared.state.lock();
        if self.shared.clock.now() >= deadline {
            return;
        }
        st.threads[self.index].status = Status::Sleeping(deadline);
        st.current = None;
        self.shared.dispatch_next(&mut st);
        self.wait_for_token(st);
    }

    fn wait_for_token(&self, mut st: sim_core::sync::MutexGuard<'_, SchedState>) {
        while st.current != Some(self.index) {
            if st.panic.is_some() && st.current.is_none() && st.run_queue.is_empty() {
                // Simulation is dead; unwind this thread quietly.
                drop(st);
                panic!("simulation aborted");
            }
            self.shared.cond.wait(&mut st);
        }
    }
}
