//! The fast execution engine: every logical thread is a stackful
//! coroutine, all running on the single OS thread that calls `run()`.
//!
//! # Why this is 10–100× faster than the legacy engine
//!
//! The legacy engine backs each logical thread with an OS thread and
//! passes an execution token over a condvar: every scheduling point costs
//! two `futex` round-trips and two kernel context switches (microseconds).
//! Here a scheduling point is a user-space stack switch — six callee-saved
//! registers and a stack pointer (tens of nanoseconds) — with no syscalls
//! and no kernel involvement at all.
//!
//! # The byte-identity contract
//!
//! The scheduling *algorithm* is a verbatim copy of the legacy engine's:
//! the same FIFO run queue, the same status transitions taken at the same
//! program points, the same clock-advance rule (sleepers are only woken —
//! in id order — when the run queue drains), the same unpark-permit
//! semantics, and the same panic/deadlock messages. Because a simulated
//! program's interleaving is a pure function of that algorithm, every
//! workload must produce **byte-identical traces** on both engines; the
//! `engine_diff` suite and the scheduler conformance proptests enforce
//! this. In particular the "sleepers wake only on an empty run queue"
//! rule is load-bearing: the SDK's switchless worker-stall handling yields
//! through stall windows precisely because spinning callers keep the run
//! queue populated, and a fast engine that woke sleepers eagerly would
//! diverge on every stall fixture.
//!
//! # Mechanics
//!
//! Context switching is ~20 lines of x86-64 assembly ([`switch`]): push
//! the six SysV callee-saved registers, swap `rsp`, pop, `ret`. A fresh
//! coroutine's stack is seeded so that the first switch "returns" into a
//! trampoline that calls [`coroutine_main`] with the thread's payload
//! (closure + engine handle) in `r12`. Panics unwind into a
//! `catch_unwind` *inside* the coroutine, so unwinding never crosses a
//! stack switch. Stacks are recycled through a free pool when threads
//! finish, and carry a canary word at the low end as a best-effort
//! overflow detector. Stack size defaults to 1 MiB and can be raised with
//! `SIM_THREADS_STACK_BYTES`.

use std::alloc::{alloc, dealloc, Layout};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sim_core::sync::Mutex;
use sim_core::syncev::{SyncBus, SyncOp, EXTERNAL_THREAD};
use sim_core::{Clock, Nanos};

use crate::{LogicalThreadId, SimCtx};

/// Environment variable overriding the per-coroutine stack size in bytes.
const STACK_ENV: &str = "SIM_THREADS_STACK_BYTES";
const DEFAULT_STACK_BYTES: usize = 1 << 20;
const MIN_STACK_BYTES: usize = 64 * 1024;
/// Written at the low end of every stack; checked on reclaim.
const STACK_CANARY: u64 = 0x5347_585f_5354_4b21; // "SGX_STK!"

// The context switch and the coroutine entry trampoline. SysV x86-64:
// rbx, rbp, r12-r15 are callee-saved; everything else is dead across the
// `call` into `switch`, so saving these six plus rsp is a complete
// continuation. The entry trampoline receives the payload pointer in r12
// (seeded by `seed_stack`) and never returns — `coroutine_main` switches
// away for good when the thread finishes.
#[cfg(target_arch = "x86_64")]
core::arch::global_asm!(
    r#"
    .text
    .balign 16
    .globl sgxperf_ctx_switch
    .type sgxperf_ctx_switch, @function
sgxperf_ctx_switch:
    push rbp
    push rbx
    push r12
    push r13
    push r14
    push r15
    mov [rdi], rsp
    mov rsp, [rsi]
    pop r15
    pop r14
    pop r13
    pop r12
    pop rbx
    pop rbp
    ret
    .size sgxperf_ctx_switch, . - sgxperf_ctx_switch

    .balign 16
    .globl sgxperf_ctx_entry
    .type sgxperf_ctx_entry, @function
sgxperf_ctx_entry:
    mov rdi, r12
    call sgxperf_coroutine_main
    ud2
    .size sgxperf_ctx_entry, . - sgxperf_ctx_entry
"#
);

#[cfg(not(target_arch = "x86_64"))]
compile_error!(
    "the fast sim-threads engine has an x86-64 context switch only; \
     build with SGXPERF_SIM_ENGINE=legacy support by porting fast.rs"
);

extern "C" {
    fn sgxperf_ctx_switch(save: *mut Context, restore: *const Context);
    fn sgxperf_ctx_entry();
}

/// A suspended execution: everything lives on its stack, so the stack
/// pointer is the whole continuation.
#[repr(C)]
struct Context {
    rsp: usize,
}

/// An owned coroutine stack allocation.
struct StackMem {
    base: *mut u8,
    layout: Layout,
}

impl StackMem {
    fn alloc(bytes: usize) -> StackMem {
        let layout = Layout::from_size_align(bytes, 16).expect("stack layout");
        // SAFETY: layout has non-zero size.
        let base = unsafe { alloc(layout) };
        assert!(!base.is_null(), "coroutine stack allocation failed");
        // SAFETY: base points at `bytes` >= 8 writable bytes.
        unsafe { (base as *mut u64).write(STACK_CANARY) };
        StackMem { base, layout }
    }

    fn canary_intact(&self) -> bool {
        // SAFETY: base points at our live allocation.
        unsafe { (self.base as *const u64).read() == STACK_CANARY }
    }
}

impl Drop for StackMem {
    fn drop(&mut self) {
        // SAFETY: base/layout came from `alloc` above and are freed once.
        unsafe { dealloc(self.base, self.layout) };
    }
}

/// Seeds a fresh stack so the first `sgxperf_ctx_switch` into it pops six
/// zeroed registers (r12 = payload) and "returns" into the entry
/// trampoline with SysV-conformant alignment.
fn seed_stack(stack: &StackMem, payload: *mut Payload) -> Context {
    let top = (stack.base as usize + stack.layout.size()) & !15usize;
    let mut sp = top;
    let mut push = |value: usize| {
        sp -= std::mem::size_of::<usize>();
        // SAFETY: sp stays far above base for these seven words.
        unsafe { (sp as *mut usize).write(value) };
    };
    // The first switch's `ret` pops this, entering the trampoline with
    // rsp 16-aligned — so its `call` leaves rsp ≡ 8 (mod 16) at
    // `coroutine_main`'s entry, exactly the SysV post-call shape.
    push(sgxperf_ctx_entry as *const () as usize);
    push(0); // rbp
    push(0); // rbx
    push(payload as usize); // r12: the trampoline's argument
    push(0); // r13
    push(0); // r14
    push(0); // r15
    Context { rsp: sp }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Running,
    Parked,
    Sleeping(Nanos),
    Done,
}

type ThreadBody = Box<dyn FnOnce(&SimCtx) + Send + 'static>;

struct ThreadEntry {
    name: String,
    status: Status,
    permit: bool,
    /// Taken on first dispatch; `None` afterwards (or for never-started
    /// threads torn down before their first dispatch).
    body: Option<ThreadBody>,
}

struct SchedState {
    threads: Vec<ThreadEntry>,
    run_queue: VecDeque<usize>,
    current: Option<usize>,
    started: bool,
    panic: Option<String>,
}

/// One logical thread's execution resources. Only touched from the OS
/// thread driving `run()` (coroutines included — they *are* that thread).
struct Coro {
    ctx: Context,
    stack: Option<StackMem>,
}

struct CoroTable {
    coros: Vec<Coro>,
    /// Recycled stacks of finished threads.
    pool: Vec<StackMem>,
    /// Where a suspending coroutine switches back to.
    sched: Context,
    stack_bytes: usize,
}

pub(crate) struct Engine {
    clock: Clock,
    state: Mutex<SchedState>,
    /// Execution resources, deliberately outside the state mutex: every
    /// access happens on the single OS thread that runs the simulation,
    /// and a coroutine must never hold the state lock across a switch.
    table: UnsafeCell<CoroTable>,
    /// Teardown flag: a resumed scheduling point panics ("simulation
    /// aborted") instead of returning, mirroring the legacy engine's
    /// abandoned-thread unwind.
    aborting: AtomicBool,
    sync_bus: Mutex<Option<Arc<SyncBus>>>,
    /// Supervision handle captured from [`crate::with_budget`] at
    /// construction; charged at every scheduling point. `None` (the
    /// unsupervised default) costs a single branch.
    budget: Option<Arc<crate::SimBudget>>,
}

// SAFETY: the raw-pointer-bearing CoroTable is only ever accessed from the
// OS thread executing `run()` — coroutines run on that thread by
// construction. All cross-thread state (spawning before `run`) goes
// through the `state` mutex.
unsafe impl Send for Engine {}
unsafe impl Sync for Engine {}

/// What the entry trampoline hands to [`coroutine_main`].
struct Payload {
    engine: Arc<Engine>,
    index: usize,
    body: ThreadBody,
}

impl Engine {
    fn bus(&self) -> Option<Arc<SyncBus>> {
        self.sync_bus.lock().clone()
    }

    /// The scheduling algorithm, verbatim from the legacy engine: FIFO run
    /// queue; when it drains, advance the clock to the earliest sleep
    /// deadline and wake every expired sleeper in id order; when nothing is
    /// left, record the deadlock diagnostic. Returns the thread to resume.
    fn dispatch_next(&self, st: &mut SchedState) -> Option<usize> {
        loop {
            if let Some(next) = st.run_queue.pop_front() {
                st.threads[next].status = Status::Running;
                st.current = Some(next);
                return Some(next);
            }
            let earliest = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t.status {
                    Status::Sleeping(dl) => Some((dl, i)),
                    _ => None,
                })
                .min();
            match earliest {
                Some((deadline, _)) => {
                    self.clock.advance_to(deadline);
                    let now = self.clock.now();
                    for i in 0..st.threads.len() {
                        if let Status::Sleeping(dl) = st.threads[i].status {
                            if dl <= now {
                                st.threads[i].status = Status::Runnable;
                                st.run_queue.push_back(i);
                            }
                        }
                    }
                }
                None => {
                    st.current = None;
                    let stuck: Vec<&str> = st
                        .threads
                        .iter()
                        .filter(|t| t.status == Status::Parked)
                        .map(|t| t.name.as_str())
                        .collect();
                    if !stuck.is_empty() && st.panic.is_none() {
                        st.panic = Some(format!(
                            "deadlock: all runnable threads exhausted while {stuck:?} remain parked"
                        ));
                    }
                    return None;
                }
            }
        }
    }

    /// Switches into logical thread `index`, creating its coroutine on
    /// first dispatch. Returns when the coroutine suspends or finishes.
    ///
    /// # Safety
    ///
    /// Must be called on the OS thread driving `run()`, with `index`
    /// freshly dispatched (status `Running`).
    unsafe fn resume(self: &Arc<Self>, index: usize) {
        let table = &mut *self.table.get();
        while table.coros.len() <= index {
            table.coros.push(Coro {
                ctx: Context { rsp: 0 },
                stack: None,
            });
        }
        if table.coros[index].stack.is_none() {
            // First dispatch: take the body and seed a (possibly recycled)
            // stack with the entry trampoline.
            let body = self.state.lock().threads[index]
                .body
                .take()
                .expect("first dispatch of a thread with no body");
            let payload = Box::into_raw(Box::new(Payload {
                engine: Arc::clone(self),
                index,
                body,
            }));
            let stack = table
                .pool
                .pop()
                .unwrap_or_else(|| StackMem::alloc(table.stack_bytes));
            table.coros[index].ctx = seed_stack(&stack, payload);
            table.coros[index].stack = Some(stack);
        }
        let save: *mut Context = &mut table.sched;
        let restore: *const Context = &table.coros[index].ctx;
        // SAFETY: `restore` holds a valid suspended continuation (seeded
        // above or saved by a prior suspend); both pointers are read/written
        // by the switch before any Rust code that could invalidate them.
        sgxperf_ctx_switch(save, restore);
    }

    /// Suspends the calling coroutine, returning control to the scheduler.
    /// Called from inside logical thread `index` after its status has been
    /// updated and the state lock released.
    ///
    /// # Safety
    ///
    /// Must be called from within coroutine `index` of this engine.
    unsafe fn suspend(&self, index: usize) {
        let table = &mut *self.table.get();
        let save: *mut Context = &mut table.coros[index].ctx;
        let restore: *const Context = &table.sched;
        // SAFETY: the scheduler context is a valid continuation (we are
        // only ever running because it switched to us).
        sgxperf_ctx_switch(save, restore);
        if self.aborting.load(Ordering::SeqCst) {
            // Teardown resumed us just to unwind — same message and same
            // unwind path as the legacy engine's abandoned threads.
            panic!("simulation aborted");
        }
    }

    /// Reclaims the stack of a finished thread into the pool.
    ///
    /// # Safety
    ///
    /// Must be called on the scheduler side (never from the coroutine whose
    /// stack is being reclaimed).
    unsafe fn reclaim_if_done(&self, index: usize) {
        if self.state.lock().threads[index].status != Status::Done {
            return;
        }
        let table = &mut *self.table.get();
        if let Some(stack) = table.coros[index].stack.take() {
            assert!(
                stack.canary_intact(),
                "coroutine stack overflow detected on {} (raise {STACK_ENV}, \
                 currently {} bytes)",
                LogicalThreadId(index),
                table.stack_bytes,
            );
            table.pool.push(stack);
        }
    }
}

/// The coroutine body every logical thread starts in, reached through the
/// asm entry trampoline. Runs the user closure under `catch_unwind`,
/// records completion exactly like the legacy engine's thread wrapper, and
/// switches back to the scheduler for good.
///
/// # Safety
///
/// Called only by `sgxperf_ctx_entry` with the payload pointer seeded by
/// `seed_stack` — a unique, live `Box<Payload>`.
#[no_mangle]
unsafe extern "C" fn sgxperf_coroutine_main(raw: *mut Payload) -> ! {
    let payload = Box::from_raw(raw);
    let engine = payload.engine;
    let index = payload.index;
    let body = payload.body;
    // Keep the engine alive through a raw pointer for the final switch:
    // every Arc must be dropped before we abandon this stack, and the
    // scheduler's own Arc (held across `resume`) keeps the engine valid.
    let engine_ptr: *const Engine = Arc::as_ptr(&engine);
    {
        let ctx = SimCtx::from_fast(Ctx {
            engine: Arc::clone(&engine),
            index,
        });
        let result = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
        if let Some(bus) = engine.bus() {
            bus.emit(index as u64, SyncOp::ThreadJoin, None, None, 0, "");
        }
        let mut st = engine.state.lock();
        st.threads[index].status = Status::Done;
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "logical thread panicked".to_string());
            if st.panic.is_none() {
                st.panic = Some(msg);
            }
        }
        st.current = None;
        drop(st);
        drop(ctx);
        drop(engine);
    }
    // SAFETY: engine_ptr outlives this switch (see above); after it the
    // scheduler reclaims this stack and never resumes this context.
    let table = &mut *(*engine_ptr).table.get();
    let save: *mut Context = &mut table.coros[index].ctx;
    let restore: *const Context = &table.sched;
    sgxperf_ctx_switch(save, restore);
    unreachable!("finished coroutine resumed");
}

/// The coroutine-backed simulation engine.
pub(crate) struct Sim {
    shared: Arc<Engine>,
}

impl Sim {
    pub(crate) fn new(clock: Clock) -> Self {
        let stack_bytes = std::env::var(STACK_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_STACK_BYTES)
            .max(MIN_STACK_BYTES);
        Sim {
            shared: Arc::new(Engine {
                clock,
                state: Mutex::new(SchedState {
                    threads: Vec::new(),
                    run_queue: VecDeque::new(),
                    current: None,
                    started: false,
                    panic: None,
                }),
                table: UnsafeCell::new(CoroTable {
                    coros: Vec::new(),
                    pool: Vec::new(),
                    sched: Context { rsp: 0 },
                    stack_bytes,
                }),
                aborting: AtomicBool::new(false),
                sync_bus: Mutex::new(None),
                budget: crate::current_budget(),
            }),
        }
    }

    pub(crate) fn debug_fields(&self) -> (usize, bool) {
        let st = self.shared.state.lock();
        (st.threads.len(), st.started)
    }

    pub(crate) fn clock(&self) -> &Clock {
        &self.shared.clock
    }

    pub(crate) fn set_sync_bus(&self, bus: Arc<SyncBus>) {
        *self.shared.sync_bus.lock() = Some(bus);
    }

    pub(crate) fn spawn<F>(&self, name: &str, f: F) -> LogicalThreadId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        let (index, parent) = {
            let mut st = self.shared.state.lock();
            let index = st.threads.len();
            st.threads.push(ThreadEntry {
                name: name.to_string(),
                status: Status::Runnable,
                permit: false,
                body: Some(Box::new(f)),
            });
            st.run_queue.push_back(index);
            (index, st.current)
        };
        if let Some(bus) = self.shared.bus() {
            let parent = parent.map_or(EXTERNAL_THREAD, |p| p as u64);
            bus.emit(
                parent,
                SyncOp::ThreadSpawn,
                None,
                Some(index as u64),
                0,
                name,
            );
        }
        LogicalThreadId(index)
    }

    pub(crate) fn run(&self) {
        {
            let mut st = self.shared.state.lock();
            assert!(!st.started, "Simulation::run called twice");
            st.started = true;
        }
        loop {
            let next = {
                let mut st = self.shared.state.lock();
                self.shared.dispatch_next(&mut st)
            };
            let Some(next) = next else { break };
            // SAFETY: we are the run() thread; `next` was just dispatched.
            unsafe {
                self.shared.resume(next);
                self.shared.reclaim_if_done(next);
            }
        }
        self.teardown();
        let panic_msg = self.shared.state.lock().panic.clone();
        if let Some(msg) = panic_msg {
            panic!("simulation failed: {msg}");
        }
    }

    /// Unwinds whatever the scheduler left behind (parked threads after a
    /// deadlock or panic), mirroring the legacy engine's teardown: started
    /// threads get one final resume that panics "simulation aborted" inside
    /// their `catch_unwind`; never-started threads are marked done without
    /// ever running (and, like the legacy engine, without a join event).
    fn teardown(&self) {
        let leftovers: Vec<usize> = {
            let st = self.shared.state.lock();
            st.threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Done)
                .map(|(i, _)| i)
                .collect()
        };
        if leftovers.is_empty() {
            return;
        }
        self.shared.aborting.store(true, Ordering::SeqCst);
        for index in leftovers {
            let started = {
                // SAFETY: run() thread; reads only.
                let table = unsafe { &*self.shared.table.get() };
                table.coros.get(index).is_some_and(|c| c.stack.is_some())
            };
            if started {
                // SAFETY: run() thread; the coroutine is suspended in a
                // scheduling point and will observe `aborting`.
                unsafe {
                    self.shared.resume(index);
                    self.shared.reclaim_if_done(index);
                }
            } else {
                let mut st = self.shared.state.lock();
                st.threads[index].status = Status::Done;
                st.threads[index].body = None;
            }
        }
        self.shared.aborting.store(false, Ordering::SeqCst);
    }
}

/// Per-logical-thread scheduling handle of the fast engine. Method bodies
/// mirror the legacy engine's line for line, with "release the lock and
/// switch to the scheduler" where the legacy engine dispatched inline and
/// blocked on the condvar.
pub(crate) struct Ctx {
    engine: Arc<Engine>,
    index: usize,
}

impl Ctx {
    pub(crate) fn id(&self) -> LogicalThreadId {
        LogicalThreadId(self.index)
    }

    pub(crate) fn clock(&self) -> &Clock {
        &self.engine.clock
    }

    /// Charges the supervision budget on entry to a scheduling point —
    /// before the state lock, so an exhaustion panic never poisons the
    /// scheduler. Placement must mirror the legacy engine exactly for
    /// the panic point to be engine-identical.
    fn charge_budget(&self) {
        if let Some(budget) = &self.engine.budget {
            budget.charge();
        }
    }

    pub(crate) fn yield_now(&self) {
        self.charge_budget();
        {
            let mut st = self.engine.state.lock();
            st.threads[self.index].status = Status::Runnable;
            st.run_queue.push_back(self.index);
            st.current = None;
        }
        // SAFETY: called from within coroutine `index`.
        unsafe { self.engine.suspend(self.index) };
    }

    pub(crate) fn park(&self) {
        self.charge_budget();
        {
            let mut st = self.engine.state.lock();
            if st.threads[self.index].permit {
                st.threads[self.index].permit = false;
                return;
            }
            st.threads[self.index].status = Status::Parked;
            st.current = None;
        }
        // SAFETY: called from within coroutine `index`.
        unsafe { self.engine.suspend(self.index) };
        // Consumed implicitly: the unparker moved us to the run queue.
    }

    pub(crate) fn unpark(&self, target: LogicalThreadId) {
        let mut st = self.engine.state.lock();
        let entry = st
            .threads
            .get(target.0)
            .unwrap_or_else(|| panic!("unpark of unknown thread {target}"));
        match entry.status {
            Status::Parked => {
                st.threads[target.0].status = Status::Runnable;
                st.run_queue.push_back(target.0);
            }
            Status::Done => {}
            _ => st.threads[target.0].permit = true,
        }
    }

    pub(crate) fn sleep_until(&self, deadline: Nanos) {
        self.charge_budget();
        {
            let mut st = self.engine.state.lock();
            if self.engine.clock.now() >= deadline {
                return;
            }
            st.threads[self.index].status = Status::Sleeping(deadline);
            st.current = None;
        }
        // SAFETY: called from within coroutine `index`.
        unsafe { self.engine.suspend(self.index) };
    }
}
