//! Property tests of the deterministic scheduler: arbitrary programs of
//! yields/sleeps/computes always terminate, always produce the same
//! interleaving, and never lose work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use sim_core::sync::Mutex;
use sim_core::{Clock, Nanos};
use sim_threads::Simulation;

/// One scheduling-relevant action a logical thread can take.
#[derive(Debug, Clone, Copy)]
enum Action {
    Yield,
    Sleep(u64),
    Compute(u64),
}

fn arb_program() -> impl Strategy<Value = Vec<Vec<Action>>> {
    let action = prop_oneof![
        Just(Action::Yield),
        (1u64..5_000).prop_map(Action::Sleep),
        (1u64..2_000).prop_map(Action::Compute),
    ];
    proptest::collection::vec(proptest::collection::vec(action, 0..12), 1..5)
}

/// Runs a program; returns (interleaving trace, final clock, work done).
fn execute(program: &[Vec<Action>]) -> (Vec<usize>, u64, u64) {
    let clock = Clock::new();
    let sim = Simulation::new(clock.clone());
    let trace: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let work = Arc::new(AtomicU64::new(0));
    for (id, actions) in program.iter().enumerate() {
        let actions = actions.clone();
        let trace = Arc::clone(&trace);
        let work = Arc::clone(&work);
        sim.spawn(&format!("t{id}"), move |ctx| {
            for a in actions {
                trace.lock().push(id);
                match a {
                    Action::Yield => ctx.yield_now(),
                    Action::Sleep(ns) => ctx.sleep(Nanos::from_nanos(ns)),
                    Action::Compute(ns) => {
                        ctx.clock().advance(Nanos::from_nanos(ns));
                        work.fetch_add(ns, Ordering::SeqCst);
                    }
                }
            }
        });
    }
    sim.run();
    let t = trace.lock().clone();
    (t, clock.now().as_nanos(), work.load(Ordering::SeqCst))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same program => identical interleaving, clock and work.
    #[test]
    fn scheduling_is_deterministic(program in arb_program()) {
        let a = execute(&program);
        let b = execute(&program);
        prop_assert_eq!(a, b);
    }

    /// Every step of every thread executes exactly once, and the clock
    /// advances by at least the total computed time.
    #[test]
    fn no_work_is_lost(program in arb_program()) {
        let (trace, clock_ns, work) = execute(&program);
        let expected_steps: usize = program.iter().map(Vec::len).sum();
        prop_assert_eq!(trace.len(), expected_steps);
        for (id, actions) in program.iter().enumerate() {
            let steps = trace.iter().filter(|&&t| t == id).count();
            prop_assert_eq!(steps, actions.len());
        }
        prop_assert!(clock_ns >= work);
    }

    /// Sleeps never deadlock: the scheduler advances the clock past every
    /// deadline, so the final time covers the longest sleeping thread's
    /// serialized sleep time.
    #[test]
    fn sleeps_complete(program in arb_program()) {
        let (_, clock_ns, _) = execute(&program);
        let max_thread_sleep: u64 = program
            .iter()
            .map(|acts| {
                acts.iter()
                    .map(|a| match a {
                        Action::Sleep(ns) => *ns,
                        _ => 0,
                    })
                    .sum()
            })
            .max()
            .unwrap_or(0);
        prop_assert!(clock_ns >= max_thread_sleep);
    }
}
