//! Property tests of the deterministic scheduler: arbitrary programs of
//! yields/sleeps/computes always terminate, always produce the same
//! interleaving, and never lose work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use sim_core::sync::Mutex;
use sim_core::{Clock, Nanos};
use sim_threads::Simulation;

/// One scheduling-relevant action a logical thread can take.
#[derive(Debug, Clone, Copy)]
enum Action {
    Yield,
    Sleep(u64),
    Compute(u64),
}

fn arb_program() -> impl Strategy<Value = Vec<Vec<Action>>> {
    let action = prop_oneof![
        Just(Action::Yield),
        (1u64..5_000).prop_map(Action::Sleep),
        (1u64..2_000).prop_map(Action::Compute),
    ];
    proptest::collection::vec(proptest::collection::vec(action, 0..12), 1..5)
}

/// Runs a program; returns (interleaving trace, final clock, work done).
fn execute(program: &[Vec<Action>]) -> (Vec<usize>, u64, u64) {
    let clock = Clock::new();
    let sim = Simulation::new(clock.clone());
    let trace: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let work = Arc::new(AtomicU64::new(0));
    for (id, actions) in program.iter().enumerate() {
        let actions = actions.clone();
        let trace = Arc::clone(&trace);
        let work = Arc::clone(&work);
        sim.spawn(&format!("t{id}"), move |ctx| {
            for a in actions {
                trace.lock().push(id);
                match a {
                    Action::Yield => ctx.yield_now(),
                    Action::Sleep(ns) => ctx.sleep(Nanos::from_nanos(ns)),
                    Action::Compute(ns) => {
                        ctx.clock().advance(Nanos::from_nanos(ns));
                        work.fetch_add(ns, Ordering::SeqCst);
                    }
                }
            }
        });
    }
    sim.run();
    let t = trace.lock().clone();
    (t, clock.now().as_nanos(), work.load(Ordering::SeqCst))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same program => identical interleaving, clock and work.
    #[test]
    fn scheduling_is_deterministic(program in arb_program()) {
        let a = execute(&program);
        let b = execute(&program);
        prop_assert_eq!(a, b);
    }

    /// Every step of every thread executes exactly once, and the clock
    /// advances by at least the total computed time.
    #[test]
    fn no_work_is_lost(program in arb_program()) {
        let (trace, clock_ns, work) = execute(&program);
        let expected_steps: usize = program.iter().map(Vec::len).sum();
        prop_assert_eq!(trace.len(), expected_steps);
        for (id, actions) in program.iter().enumerate() {
            let steps = trace.iter().filter(|&&t| t == id).count();
            prop_assert_eq!(steps, actions.len());
        }
        prop_assert!(clock_ns >= work);
    }

    /// Sleeps never deadlock: the scheduler advances the clock past every
    /// deadline, so the final time covers the longest sleeping thread's
    /// serialized sleep time.
    #[test]
    fn sleeps_complete(program in arb_program()) {
        let (_, clock_ns, _) = execute(&program);
        let max_thread_sleep: u64 = program
            .iter()
            .map(|acts| {
                acts.iter()
                    .map(|a| match a {
                        Action::Sleep(ns) => *ns,
                        _ => 0,
                    })
                    .sum()
            })
            .max()
            .unwrap_or(0);
        prop_assert!(clock_ns >= max_thread_sleep);
    }
}

// ---------------------------------------------------------------------------
// Engine conformance: the fast coroutine engine must be observationally
// identical to the legacy OS-thread engine on arbitrary scheduling
// programs — including park/unpark permit edges and the all-parked
// deadlock diagnostic, which both engines must word for word agree on.
// ---------------------------------------------------------------------------

use sim_threads::{with_engine, Engine};

/// Superset of [`Action`] with the park/unpark surface included.
#[derive(Debug, Clone, Copy)]
enum ConfAction {
    Yield,
    Sleep(u64),
    Compute(u64),
    Park,
    /// Unpark thread `target % n` (resolved at execution time) — possibly
    /// the acting thread itself (a self-permit), possibly one that never
    /// parks (a lost permit), possibly one currently sleeping (a deferred
    /// permit, no early wake).
    Unpark(usize),
}

fn arb_conf_program() -> impl Strategy<Value = Vec<Vec<ConfAction>>> {
    let action = prop_oneof![
        Just(ConfAction::Yield),
        (1u64..3_000).prop_map(ConfAction::Sleep),
        (1u64..1_000).prop_map(ConfAction::Compute),
        Just(ConfAction::Park),
        (0usize..8).prop_map(ConfAction::Unpark),
    ];
    proptest::collection::vec(proptest::collection::vec(action, 0..10), 1..5)
}

/// Everything an engine run can show: the interleaving, the final virtual
/// clock, and the terminal panic message if the simulation died (e.g.
/// the all-parked deadlock diagnostic).
type Observation = (Vec<usize>, u64, Option<String>);

fn execute_conf(engine: Engine, program: &[Vec<ConfAction>]) -> Observation {
    let clock = Clock::new();
    let trace: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let ids: Arc<Mutex<Vec<sim_threads::LogicalThreadId>>> = Arc::new(Mutex::new(Vec::new()));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        with_engine(engine, || {
            let sim = Simulation::new(clock.clone());
            for (id, actions) in program.iter().enumerate() {
                let actions = actions.clone();
                let trace = Arc::clone(&trace);
                let thread_ids = Arc::clone(&ids);
                let tid = sim.spawn(&format!("t{id}"), move |ctx| {
                    for a in actions {
                        trace.lock().push(id);
                        match a {
                            ConfAction::Yield => ctx.yield_now(),
                            ConfAction::Sleep(ns) => ctx.sleep(Nanos::from_nanos(ns)),
                            ConfAction::Compute(ns) => {
                                ctx.clock().advance(Nanos::from_nanos(ns));
                            }
                            ConfAction::Park => ctx.park(),
                            ConfAction::Unpark(target) => {
                                // All spawns precede run(), so the id table
                                // is complete by the time any action runs.
                                let ids = thread_ids.lock();
                                let target = ids[target % ids.len()];
                                drop(ids);
                                ctx.unpark(target);
                            }
                        }
                    }
                });
                ids.lock().push(tid);
            }
            sim.run();
        });
    }));
    let panic_msg = result.err().map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic".to_string())
    });
    let t = trace.lock().clone();
    (t, clock.now().as_nanos(), panic_msg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary spawn/yield/sleep/park/unpark programs observe the exact
    /// same interleaving, clock and outcome on both engines — completed
    /// runs and deadlocked runs alike.
    #[test]
    fn engines_agree_on_arbitrary_programs(program in arb_conf_program()) {
        let legacy = execute_conf(Engine::Legacy, &program);
        let fast = execute_conf(Engine::Fast, &program);
        prop_assert_eq!(legacy, fast);
    }

    /// Force the all-parked deadlock: every thread parks after its
    /// actions, so unless pending permits cover every park, the run dies
    /// — and the diagnostic (which names the stuck threads) must be
    /// word-for-word identical across engines.
    #[test]
    fn engines_agree_on_deadlock_diagnostics(program in arb_conf_program()) {
        let mut program = program;
        for actions in &mut program {
            actions.push(ConfAction::Park);
        }
        let legacy = execute_conf(Engine::Legacy, &program);
        let fast = execute_conf(Engine::Fast, &program);
        prop_assert_eq!(legacy.clone(), fast);
        if let (_, _, Some(msg)) = legacy {
            prop_assert!(
                msg.contains("deadlock: all runnable threads exhausted"),
                "unexpected terminal panic: {}",
                msg
            );
        }
    }
}

/// The permit edge pinned down deterministically: an unpark delivered
/// before the park must let the park fall through on both engines, and an
/// unpark of a sleeping thread must *not* wake it early.
#[test]
fn permit_edges_match_across_engines() {
    let program = vec![
        // t0 parks twice: once covered by t1's early permit, once by
        // t1's late unpark after t0 is already parked.
        vec![ConfAction::Compute(10), ConfAction::Park, ConfAction::Park],
        // t1 permits t0 before its first park, sleeps (t0's park order
        // lands while t1 sleeps), then unparks t0 for real.
        vec![
            ConfAction::Unpark(0),
            ConfAction::Sleep(500),
            ConfAction::Unpark(0),
        ],
    ];
    let legacy = execute_conf(Engine::Legacy, &program);
    let fast = execute_conf(Engine::Fast, &program);
    assert_eq!(legacy, fast);
    assert_eq!(legacy.2, None, "program must complete: {:?}", legacy.2);
}
