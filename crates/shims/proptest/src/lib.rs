//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace must build with **no network access**, so the real
//! `proptest` from crates.io is unavailable. This shim reimplements the
//! small slice of its API that the test suites use:
//!
//! * [`Strategy`] with `prop_map`/`boxed`, implemented for integer ranges,
//!   `any::<T>()`, tuples (up to 10), `&str` regex-ish patterns,
//!   [`Just`], `collection::vec`, `option::of` and [`Union`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! * [`ProptestConfig`] (`with_cases` only).
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking** — failures report the exact generated inputs instead.
//! * **Deterministic** — the RNG seed is derived from the test's module
//!   path and name, so every run explores the same cases. There is no
//!   persistence and `.proptest-regressions` files are ignored.
//! * String "regex" strategies only honour the `\PC{lo,hi}` shape used in
//!   this workspace (arbitrary printable unicode, bounded length); any
//!   other pattern falls back to bounded ASCII.

pub mod test_runner {
    use std::fmt;

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seeds from a test name (FNV-1a over the bytes) so each test
        /// explores its own deterministic sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a test case failed. Mirrors the real crate's type loosely.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an output type from a deterministic RNG.
    ///
    /// Unlike the real crate there is no value tree and no shrinking:
    /// `generate` yields the final value directly.
    pub trait Strategy {
        type Value: fmt::Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    trait ErasedStrategy<T> {
        fn generate_erased(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy, as returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_erased(rng)
        }
    }

    /// Chooses uniformly between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T: fmt::Debug> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self(arms)
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: fmt::Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    // -- any::<T>() ---------------------------------------------------

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    /// Types `any::<T>()` knows how to sample.
    pub trait ArbitraryValue: fmt::Debug {
        fn sample(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn sample(rng: &mut TestRng) -> f64 {
            rng.f64_unit()
        }
    }

    impl ArbitraryValue for char {
        fn sample(rng: &mut TestRng) -> char {
            super::sample_printable_char(rng)
        }
    }

    // -- integer ranges ----------------------------------------------

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain wrapped to zero: any value works.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64_unit() * (self.end - self.start)
        }
    }

    // -- tuples -------------------------------------------------------

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
    tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8
    );
    tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9
    );

    // -- string patterns ---------------------------------------------

    /// `&str` acts as a pattern strategy. Only the `\PC{lo,hi}` form used
    /// in this workspace is interpreted; anything else yields bounded
    /// ASCII alphanumerics so tests still exercise *some* input.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = super::parse_repeat_bounds(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| super::sample_printable_char(rng))
                .collect()
        }
    }
}

/// Extracts `{lo,hi}` repeat bounds from a `\PC{lo,hi}`-style pattern.
fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Samples a printable (non-control) char: mostly ASCII so parsers see
/// realistic text, with a multibyte tail to exercise UTF-8 handling.
fn sample_printable_char(rng: &mut test_runner::TestRng) -> char {
    match rng.below(8) {
        0..=5 => (b' ' + rng.below(95) as u8) as char,
        6 => char::from_u32(0xA1 + rng.below(0x2000) as u32).unwrap_or('¡'),
        _ => char::from_u32(0x1F300 + rng.below(0x100) as u32).unwrap_or('🌀'),
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`], inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt;

    pub struct OptionStrategy<S>(S);

    /// `None` roughly a quarter of the time, like the real crate's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Declares deterministic property tests.
///
/// Supports the subset of the real macro's grammar the workspace uses: an
/// optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    { ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(e) => panic!(
                            "proptest case {case}/{} failed: {e}\n  inputs: {inputs}",
                            config.cases,
                        ),
                    }
                }
            }
        )*
    };
}
