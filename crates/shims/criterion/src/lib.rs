//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds with no network access, so the real harness is
//! unavailable. This shim keeps the `criterion_micro` bench compiling and
//! producing *useful* (wall-clock mean over a fixed batch) numbers,
//! without the statistics machinery: each `bench_function` runs a warmup
//! batch, then measures batches until `measurement_time` is spent and
//! reports mean time per iteration and derived throughput.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            batch: 1,
        };
        // Warmup: let the closure pick a batch size that takes >= ~5 ms.
        f(&mut b);
        while b.elapsed < Duration::from_millis(5) && b.batch < 1 << 20 {
            b.batch *= 4;
            b.reset();
            f(&mut b);
        }
        b.reset();
        let deadline = Instant::now() + self.criterion.measurement_time;
        let mut samples = 0usize;
        while samples < self.criterion.sample_size && Instant::now() < deadline {
            f(&mut b);
            samples += 1;
        }
        let mean_ns = if b.iters_done == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters_done as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!(" ({:.2} Melem/s)", n as f64 * 1e3 / mean_ns)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 * 1e9 / mean_ns / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {}{}  [{} iters, {} samples]",
            self.name,
            FmtNanos(mean_ns),
            rate,
            b.iters_done,
            samples
        );
        self
    }

    pub fn finish(&mut self) {}
}

struct FmtNanos(f64);

impl fmt::Display for FmtNanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} s", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} ms", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} us", self.0 / 1e3)
        } else {
            write!(f, "{:.1} ns", self.0)
        }
    }
}

pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    batch: u64,
}

impl Bencher {
    fn reset(&mut self) {
        self.iters_done = 0;
        self.elapsed = Duration::ZERO;
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std_black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters_done += self.batch;
    }
}

/// Declares a benchmark group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
