//! Enclave lifecycle events: loss, rebuild, replay and recovery.
//!
//! A lost enclave (power transition, machine check — [`FaultKind::EnclaveLost`])
//! is not a transient fault: nothing inside the retry/backoff machinery can
//! bring it back, only a supervisor that rebuilds the enclave and replays
//! its state can. This module is the event channel that recovery flows
//! through: the machine emits [`LifecycleStage::Lost`] when it destroys an
//! enclave, and the SDK supervisor emits the rebuild/replay/retry stages as
//! it works the enclave back, so the logger can reconstruct the full
//! mean-time-to-recovery ledger in virtual time.
//!
//! [`FaultKind::EnclaveLost`]: crate::fault::FaultKind::EnclaveLost

use std::sync::Arc;

use crate::time::Nanos;

/// One stage of an enclave-loss recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleStage {
    /// The enclave was destroyed (EPC contents gone).
    Lost,
    /// The supervisor rebuilt the enclave from its recipe; the magnitude
    /// is the rebuild duration in nanoseconds.
    Rebuild,
    /// The supervisor replayed a registered warm-up ecall; the magnitude
    /// is the replay duration in nanoseconds.
    Replay,
    /// The supervisor retried the interrupted call; the magnitude is the
    /// backoff charged before the retry, in nanoseconds.
    Retry,
    /// The interrupted call completed after recovery; the magnitude is the
    /// virtual-time MTTR (loss → completion) in nanoseconds.
    Recovered,
    /// The restart budget (circuit breaker) was exhausted; the loss
    /// surfaced as a terminal error.
    GaveUp,
}

impl LifecycleStage {
    /// Stable on-disk/event code for this stage.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            LifecycleStage::Lost => 0,
            LifecycleStage::Rebuild => 1,
            LifecycleStage::Replay => 2,
            LifecycleStage::Retry => 3,
            LifecycleStage::Recovered => 4,
            LifecycleStage::GaveUp => 5,
        }
    }

    /// Decodes a stage code; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u8) -> Option<LifecycleStage> {
        match code {
            0 => Some(LifecycleStage::Lost),
            1 => Some(LifecycleStage::Rebuild),
            2 => Some(LifecycleStage::Replay),
            3 => Some(LifecycleStage::Retry),
            4 => Some(LifecycleStage::Recovered),
            5 => Some(LifecycleStage::GaveUp),
            _ => None,
        }
    }

    /// The human label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LifecycleStage::Lost => "lost",
            LifecycleStage::Rebuild => "rebuild",
            LifecycleStage::Replay => "replay",
            LifecycleStage::Retry => "retry",
            LifecycleStage::Recovered => "recovered",
            LifecycleStage::GaveUp => "gave-up",
        }
    }
}

/// One enclave lifecycle event, as observed by the logger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// The recovery stage.
    pub stage: LifecycleStage,
    /// The affected enclave.
    pub enclave: u32,
    /// Logical thread driving the recovery (or interrupted by the loss).
    pub thread: u64,
    /// Restart attempt this event belongs to (1-based; 0 for the loss
    /// itself).
    pub attempt: u32,
    /// Stage-specific magnitude, in nanoseconds (see [`LifecycleStage`]).
    pub magnitude: u64,
    /// Virtual time of the event.
    pub time: Nanos,
}

/// Observer callback for [`LifecycleEvent`]s (the logger's hook).
pub type LifecycleObserver = Arc<dyn Fn(&LifecycleEvent) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_codes_roundtrip() {
        for stage in [
            LifecycleStage::Lost,
            LifecycleStage::Rebuild,
            LifecycleStage::Replay,
            LifecycleStage::Retry,
            LifecycleStage::Recovered,
            LifecycleStage::GaveUp,
        ] {
            assert_eq!(LifecycleStage::from_code(stage.code()), Some(stage));
            assert!(!stage.label().is_empty());
        }
        assert_eq!(LifecycleStage::from_code(99), None);
    }
}
