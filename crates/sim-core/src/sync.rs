//! `parking_lot`-flavoured synchronisation primitives over `std::sync`.
//!
//! The workspace builds offline, so the real `parking_lot` crate is not
//! available. This module mirrors the subset of its API the simulator
//! uses — panic-free locking (`lock()`/`read()`/`write()` return guards
//! directly, ignoring poison) and a [`Condvar`] whose `wait` takes the
//! guard by `&mut` — so call sites are a one-line import change.
//!
//! Poisoning is deliberately ignored: a panicking simulator thread should
//! not cascade into unrelated test failures, which matches `parking_lot`
//! semantics (it has no poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard wrapping the std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take ownership of it (std's `wait` consumes the guard).
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically releases the guarded mutex and blocks until notified,
    /// reacquiring the lock before returning (spurious wakes possible,
    /// as with both std and `parking_lot`).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn condvar_wait_roundtrips_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
                // The guard must be usable again after wait().
                *ready = false;
            })
        };
        thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
        assert!(!*lock.lock());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7u32);
        let (a, b) = (l.read(), l.read());
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
