//! Simulation substrate primitives shared by every crate in the workspace.
//!
//! The sgx-perf reproduction runs entirely on *virtual time*: no experiment
//! ever consults the host clock. This crate provides
//!
//! * [`Nanos`] / [`Cycles`] — strongly-typed time and cycle quantities,
//! * [`Clock`] — a shareable, monotonically advancing virtual clock,
//! * [`HwProfile`] / [`CostModel`] — the hardware cost tables (unpatched,
//!   Spectre-patched, fully patched incl. Foreshadow/L1TF) calibrated with
//!   the measurements reported in §2.3.1 and Table 2 of the paper,
//! * [`rng`] — seeded deterministic random number helpers,
//! * [`fault`] — seeded, schedulable fault plans ([`FaultPlan`]) and the
//!   deterministic injector the stack's chaos hooks poll.
//!
//! # Examples
//!
//! ```
//! use sim_core::{Clock, Nanos, HwProfile};
//!
//! let clock = Clock::new();
//! clock.advance(Nanos::from_micros(3));
//! assert_eq!(clock.now(), Nanos::from_nanos(3_000));
//!
//! let cost = HwProfile::Unpatched.cost_model();
//! assert_eq!(cost.transition_roundtrip(), Nanos::from_nanos(2_130));
//! ```

pub mod campaign;
pub mod clock;
pub mod fault;
pub mod hw;
pub mod lifecycle;
pub mod rng;
pub mod sync;
pub mod syncev;
pub mod time;

pub use campaign::{CampaignSpec, CellCoord, SpecError, SwitchlessAxis};
pub use clock::Clock;
pub use fault::{FaultAction, FaultEvent, FaultInjector, FaultObserver, FaultPlan};
pub use hw::{CostModel, HwProfile};
pub use lifecycle::{LifecycleEvent, LifecycleObserver, LifecycleStage};
pub use syncev::{Shared, SyncBus, SyncEvent, SyncObserver, SyncOp};
pub use time::{Cycles, Nanos};
