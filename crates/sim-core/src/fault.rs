//! Deterministic fault injection: seeded, schedulable fault plans.
//!
//! A [`FaultPlan`] describes *what* goes wrong and *when* — keyed on
//! virtual time or on a per-site call index — and a [`FaultInjector`]
//! answers the stack's poll questions ("does this enclave entry take an
//! AEX storm?", "does this ocall fail?") deterministically. Two injectors
//! built from the same plan answer every poll sequence identically, on
//! every hardware profile: the plan's seed is consumed *once*, at
//! construction, to jitter fault magnitudes, so no poll-order or
//! profile-dependent timing can perturb the RNG stream. An empty plan is
//! a structural no-op — it charges no virtual time and emits no events —
//! which keeps zero-fault runs byte-identical to runs with no plan at all.
//!
//! Plans have a compact text form for the `sgxperf report --faults` flag
//! (see [`FaultPlan::parse`]); parsing and [`Display`](fmt::Display) are
//! inverse up to canonicalisation.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::rng;
use crate::sync::Mutex;
use crate::time::Nanos;

/// When a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// On the n-th poll (1-based) of the fault's injection site: enclave
    /// entries for storms, ocall attempts for ocall faults, worker
    /// dispatch attempts for stalls, ring posts for ring-full bursts, TCS
    /// bind attempts for exhaustion.
    AtCall(u64),
    /// On the first poll of the fault's site at or after this virtual time.
    AtTime(Nanos),
}

/// What goes wrong. Magnitudes given here are *nominal*; the plan seed
/// jitters them deterministically at injector construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A burst of `count` asynchronous exits delivered back-to-back on one
    /// enclave entry (interrupt storm).
    AexStorm {
        /// Nominal number of extra AEXes in the burst.
        count: u32,
    },
    /// All resident EPC pages of the executing enclave are forcibly
    /// evicted (EPC pressure spike); the run pays the fault-in cost again.
    EvictStorm,
    /// A transient EWB/ELDU slowdown: paging costs are multiplied by
    /// `factor` for `duration` of virtual time after the trigger.
    PagingSlow {
        /// Cost multiplier applied to page-in/page-out while active.
        factor: u32,
        /// Nominal length of the slowdown window.
        duration: Nanos,
    },
    /// The next triggered ocall fails `times` times before succeeding.
    OcallFail {
        /// Failed attempts before the call goes through.
        times: u32,
    },
    /// The next triggered ocall times out — each failed attempt costs a
    /// full transition plus `delay` — `times` times before succeeding.
    OcallTimeout {
        /// Nominal extra wait per timed-out attempt.
        delay: Nanos,
        /// Timed-out attempts before the call goes through.
        times: u32,
    },
    /// A switchless worker stalls for `delay` before serving its next
    /// call, letting callers exhaust their spin budget and fall back.
    WorkerStall {
        /// Nominal stall length.
        delay: Nanos,
    },
    /// The switchless request ring reports full for the next `calls` post
    /// attempts, forcing synchronous fallbacks.
    RingFull {
        /// Number of rejected post attempts in the burst.
        calls: u32,
    },
    /// TCS binding fails `times` times (all TCS pages busy) before a slot
    /// frees up.
    TcsExhaust {
        /// Failed bind attempts before one succeeds.
        times: u32,
    },
    /// The enclave is destroyed at the trigger — the simulated analogue of
    /// a power transition or machine-check wiping the EPC. A `call=`
    /// trigger (counted per EENTER) fails that very entry; a `t=` trigger
    /// unwinds in-flight execution with an AEX-style exit whose ERESUME
    /// never happens. Every subsequent entry fails with `EnclaveLost`
    /// until the enclave is rebuilt. Not recoverable by retry/backoff —
    /// only a supervisor that rebuilds the enclave recovers from it.
    EnclaveLost,
    /// The EPC backing the enclave is poisoned at the trigger: in-flight
    /// and currently-entered execution still completes, but the enclave is
    /// marked lost on its *next* EENTER (the deferred-MCE flavour of
    /// [`FaultKind::EnclaveLost`]).
    EpcPoison,
}

impl FaultKind {
    /// Stable on-disk/event code for this kind.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            FaultKind::AexStorm { .. } => 0,
            FaultKind::EvictStorm => 1,
            FaultKind::PagingSlow { .. } => 2,
            FaultKind::OcallFail { .. } => 3,
            FaultKind::OcallTimeout { .. } => 4,
            FaultKind::WorkerStall { .. } => 5,
            FaultKind::RingFull { .. } => 6,
            FaultKind::TcsExhaust { .. } => 7,
            FaultKind::EnclaveLost => 8,
            FaultKind::EpcPoison => 9,
        }
    }

    /// The spec-grammar name of this kind.
    #[must_use]
    pub fn label(self) -> &'static str {
        kind_label(self.code())
    }
}

/// The spec-grammar name for a [`FaultKind::code`]; `"?"` for unknown
/// codes (e.g. from a newer trace).
#[must_use]
pub fn kind_label(code: u8) -> &'static str {
    match code {
        0 => "aex-storm",
        1 => "evict-storm",
        2 => "paging-slow",
        3 => "ocall-fail",
        4 => "ocall-timeout",
        5 => "worker-stall",
        6 => "ring-full",
        7 => "tcs-exhaust",
        8 => "enclave_lost",
        9 => "epc_poison",
        _ => "?",
    }
}

/// What happened at an injection site — the event stream distinguishes
/// the injection itself from the SDK's recovery behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// A fault was injected.
    Injected,
    /// The SDK retried after a transient fault (backoff charged).
    Retried,
    /// The operation completed despite the fault.
    Recovered,
    /// The retry budget was exhausted; the fault surfaced as an error.
    GaveUp,
}

impl FaultAction {
    /// Stable on-disk/event code for this action.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            FaultAction::Injected => 0,
            FaultAction::Retried => 1,
            FaultAction::Recovered => 2,
            FaultAction::GaveUp => 3,
        }
    }

    /// Decodes an action code; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u8) -> Option<FaultAction> {
        match code {
            0 => Some(FaultAction::Injected),
            1 => Some(FaultAction::Retried),
            2 => Some(FaultAction::Recovered),
            3 => Some(FaultAction::GaveUp),
            _ => None,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A seeded, schedulable fault plan. See the [module docs](self) for the
/// determinism contract and [`FaultPlan::parse`] for the text grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for deterministic magnitude jitter (consumed at injector
    /// construction only).
    pub seed: u64,
    /// The scheduled faults, in declaration order.
    pub faults: Vec<Fault>,
}

/// A malformed fault spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

fn spec_err<T>(msg: impl Into<String>) -> Result<T, FaultSpecError> {
    Err(FaultSpecError(msg.into()))
}

/// Formats a duration so that [`parse_duration`] reads it back exactly.
/// Shared with the campaign grammar (`cell_deadline`) and its summary
/// renderer.
pub fn fmt_duration(d: Nanos) -> String {
    let n = d.as_nanos();
    if n != 0 && n.is_multiple_of(1_000_000_000) {
        format!("{}s", n / 1_000_000_000)
    } else if n != 0 && n.is_multiple_of(1_000_000) {
        format!("{}ms", n / 1_000_000)
    } else if n != 0 && n.is_multiple_of(1_000) {
        format!("{}us", n / 1_000)
    } else {
        format!("{n}ns")
    }
}

/// Parses `40us` / `2ms` / `1s` / `500ns` / bare-nanosecond durations.
///
/// # Errors
///
/// Returns an error when `s` is not a number with an optional
/// `ns`/`us`/`ms`/`s` suffix.
pub fn parse_duration(s: &str) -> Result<Nanos, FaultSpecError> {
    let s = s.trim();
    let (digits, mul) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    match digits.trim().parse::<u64>() {
        Ok(n) => Ok(Nanos::from_nanos(n * mul)),
        Err(_) => spec_err(format!("bad duration `{s}` (want e.g. 40us, 2ms, 1s)")),
    }
}

/// Key=value parameter list of one spec clause.
struct Params<'a> {
    clause: &'a str,
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Params<'a> {
    fn parse(clause: &'a str, list: Option<&'a str>) -> Result<Self, FaultSpecError> {
        let mut pairs = Vec::new();
        if let Some(list) = list {
            for item in list.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                let Some((k, v)) = item.split_once('=') else {
                    return spec_err(format!(
                        "bad parameter `{item}` in `{clause}` (want key=value)"
                    ));
                };
                pairs.push((k.trim(), v.trim()));
            }
        }
        Ok(Params { clause, pairs })
    }

    fn take(&mut self, key: &str) -> Option<&'a str> {
        let i = self.pairs.iter().position(|(k, _)| *k == key)?;
        Some(self.pairs.remove(i).1)
    }

    fn count(&mut self, key: &str, default: u32) -> Result<u32, FaultSpecError> {
        let Some(v) = self.take(key) else {
            return Ok(default);
        };
        match v.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => spec_err(format!(
                "`{key}` must be a positive integer in `{}`",
                self.clause
            )),
        }
    }

    fn duration(&mut self, key: &str, default: Nanos) -> Result<Nanos, FaultSpecError> {
        match self.take(key) {
            Some(v) => parse_duration(v),
            None => Ok(default),
        }
    }

    fn finish(self) -> Result<(), FaultSpecError> {
        match self.pairs.first() {
            Some((k, _)) => spec_err(format!("unknown parameter `{k}` in `{}`", self.clause)),
            None => Ok(()),
        }
    }
}

impl FaultPlan {
    /// An empty plan with a seed.
    #[must_use]
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends a fault (builder-style, for tests and programmatic plans).
    #[must_use]
    pub fn with(mut self, trigger: FaultTrigger, kind: FaultKind) -> FaultPlan {
        self.faults.push(Fault { trigger, kind });
        self
    }

    /// Whether the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses the `--faults` spec grammar:
    ///
    /// ```text
    /// plan    := clause (';' clause)*
    /// clause  := 'seed=' u64 | kind '@' trigger [':' params]
    /// trigger := 'call=' u64 | 't=' duration        (1-based call index)
    /// params  := key '=' value (',' key '=' value)*
    /// duration:= u64 ['ns'|'us'|'ms'|'s']           (default ns)
    /// ```
    ///
    /// Kinds and their parameters (defaults in parentheses):
    ///
    /// | kind            | parameters                        |
    /// |-----------------|-----------------------------------|
    /// | `aex-storm`     | `count` (8)                       |
    /// | `evict-storm`   | —                                 |
    /// | `paging-slow`   | `factor` (4), `dur` (1ms); `t=` triggers only |
    /// | `ocall-fail`    | `times` (1)                       |
    /// | `ocall-timeout` | `delay` (50us), `times` (1)       |
    /// | `worker-stall`  | `delay` (500us)                   |
    /// | `ring-full`     | `calls` (4)                       |
    /// | `tcs-exhaust`   | `times` (1)                       |
    /// | `enclave_lost`  | —                                 |
    /// | `epc_poison`    | —                                 |
    ///
    /// Example: `seed=7;aex-storm@call=3:count=6;ocall-timeout@call=2:delay=40us,times=2`.
    ///
    /// # Errors
    ///
    /// Unknown kinds, malformed triggers/durations, unknown or invalid
    /// parameters, and `call=` triggers on `paging-slow`.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                plan.seed = match v.trim().parse() {
                    Ok(s) => s,
                    Err(_) => return spec_err(format!("bad seed `{v}`")),
                };
                continue;
            }
            let (head, list) = match clause.split_once(':') {
                Some((h, p)) => (h, Some(p)),
                None => (clause, None),
            };
            let Some((name, trig)) = head.split_once('@') else {
                return spec_err(format!("missing `@trigger` in `{clause}`"));
            };
            let trigger = if let Some(n) = trig.trim().strip_prefix("call=") {
                match n.trim().parse::<u64>() {
                    Ok(n) if n >= 1 => FaultTrigger::AtCall(n),
                    _ => return spec_err(format!("bad call index in `{clause}` (1-based)")),
                }
            } else if let Some(t) = trig.trim().strip_prefix("t=") {
                FaultTrigger::AtTime(parse_duration(t)?)
            } else {
                return spec_err(format!(
                    "bad trigger `{trig}` in `{clause}` (want call=N or t=T)"
                ));
            };
            let mut params = Params::parse(clause, list)?;
            let kind = match name.trim() {
                "aex-storm" => FaultKind::AexStorm {
                    count: params.count("count", 8)?,
                },
                "evict-storm" => FaultKind::EvictStorm,
                "paging-slow" => {
                    if matches!(trigger, FaultTrigger::AtCall(_)) {
                        return spec_err(format!(
                            "`paging-slow` takes a `t=` trigger, not `call=`, in `{clause}`"
                        ));
                    }
                    FaultKind::PagingSlow {
                        factor: params.count("factor", 4)?,
                        duration: params.duration("dur", Nanos::from_millis(1))?,
                    }
                }
                "ocall-fail" => FaultKind::OcallFail {
                    times: params.count("times", 1)?,
                },
                "ocall-timeout" => FaultKind::OcallTimeout {
                    delay: params.duration("delay", Nanos::from_micros(50))?,
                    times: params.count("times", 1)?,
                },
                "worker-stall" => FaultKind::WorkerStall {
                    delay: params.duration("delay", Nanos::from_micros(500))?,
                },
                "ring-full" => FaultKind::RingFull {
                    calls: params.count("calls", 4)?,
                },
                "tcs-exhaust" => FaultKind::TcsExhaust {
                    times: params.count("times", 1)?,
                },
                "enclave_lost" => FaultKind::EnclaveLost,
                "epc_poison" => FaultKind::EpcPoison,
                other => return spec_err(format!("unknown fault kind `{other}`")),
            };
            params.finish()?;
            plan.faults.push(Fault { trigger, kind });
        }
        Ok(plan)
    }
}

impl FromStr for FaultPlan {
    type Err = FaultSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultPlan::parse(s)
    }
}

impl fmt::Display for FaultTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTrigger::AtCall(n) => write!(f, "call={n}"),
            FaultTrigger::AtTime(t) => write!(f, "t={}", fmt_duration(*t)),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind.label(), self.trigger)?;
        match self.kind {
            FaultKind::AexStorm { count } => write!(f, ":count={count}"),
            FaultKind::EvictStorm => Ok(()),
            FaultKind::PagingSlow { factor, duration } => {
                write!(f, ":factor={factor},dur={}", fmt_duration(duration))
            }
            FaultKind::OcallFail { times } => write!(f, ":times={times}"),
            FaultKind::OcallTimeout { delay, times } => {
                write!(f, ":delay={},times={times}", fmt_duration(delay))
            }
            FaultKind::WorkerStall { delay } => write!(f, ":delay={}", fmt_duration(delay)),
            FaultKind::RingFull { calls } => write!(f, ":calls={calls}"),
            FaultKind::TcsExhaust { times } => write!(f, ":times={times}"),
            FaultKind::EnclaveLost | FaultKind::EpcPoison => Ok(()),
        }
    }
}

impl fmt::Display for FaultPlan {
    /// Canonical spec form: `Display` then [`FaultPlan::parse`] is the
    /// identity, and parse-then-`Display` canonicalises (defaults become
    /// explicit, whitespace is dropped).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if self.seed != 0 {
            write!(f, "seed={}", self.seed)?;
            sep = ";";
        }
        for fault in &self.faults {
            write!(f, "{sep}{fault}")?;
            sep = ";";
        }
        Ok(())
    }
}

/// An injected fault or a recovery step, as observed by the logger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// [`FaultKind::code`] of the fault.
    pub code: u8,
    /// Injection or recovery step.
    pub action: FaultAction,
    /// Affected enclave (0 when not tied to one).
    pub enclave: u32,
    /// Logical thread at the injection site.
    pub thread: u64,
    /// Ecall/ocall index at the site, when meaningful.
    pub call_index: Option<u32>,
    /// Kind-specific magnitude: AEX count, pages evicted, delay or
    /// backoff in nanoseconds, slowdown factor, failed attempts survived.
    pub magnitude: u64,
    /// Virtual time of the event.
    pub time: Nanos,
}

/// Observer callback for [`FaultEvent`]s (the logger's hook).
pub type FaultObserver = Arc<dyn Fn(&FaultEvent) + Send + Sync>;

/// Faults due at one enclave-execution site poll.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecFaults {
    /// Deliver this many extra AEXes back-to-back.
    pub aex_storm: Option<u32>,
    /// Forcibly evict the enclave's resident EPC pages.
    pub evict_storm: bool,
    /// The enclave is destroyed mid-execution (time-triggered
    /// [`FaultKind::EnclaveLost`]): unwind with an AEX-style exit whose
    /// ERESUME never happens and mark the enclave lost.
    pub lost: bool,
}

/// Faults due at one enclave-entry (EENTER) site poll.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnterFaults {
    /// The enclave is destroyed at this entry: the EENTER itself fails.
    pub lost: bool,
    /// The EPC is poisoned from this entry on: this entry proceeds, the
    /// *next* one finds the enclave lost.
    pub poison: bool,
}

/// An active paging-cost slowdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagingSlowdown {
    /// Multiplier to apply to the paging cost.
    pub factor: f64,
    /// Whether this poll opened the window (the caller emits the
    /// injection event exactly once, on the opening poll).
    pub opened: bool,
}

/// A fault taken by one ocall attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OcallFault {
    /// The ocall fails `times` times before succeeding.
    Fail {
        /// Failed attempts before success.
        times: u32,
    },
    /// The ocall times out `times` times, each attempt costing `delay`.
    Timeout {
        /// Extra wait per timed-out attempt (already jittered).
        delay: Nanos,
        /// Timed-out attempts before success.
        times: u32,
    },
}

#[derive(Debug)]
struct Armed {
    trigger: FaultTrigger,
    kind: FaultKind,
    fired: bool,
    /// Remaining uses for burst kinds (ring-full posts, TCS binds).
    remaining: u32,
    /// End of the active window for `paging-slow`.
    window_until: Nanos,
}

#[derive(Debug, Default)]
struct Counters {
    exec: u64,
    enter: u64,
    ocall: u64,
    worker: u64,
    post: u64,
    tcs: u64,
}

#[derive(Debug)]
struct State {
    counters: Counters,
    armed: Vec<Armed>,
}

fn due(trigger: FaultTrigger, calls: u64, now: Nanos) -> bool {
    match trigger {
        FaultTrigger::AtCall(n) => calls >= n,
        FaultTrigger::AtTime(t) => now >= t,
    }
}

/// ±50% around the nominal count, never below 1.
fn jitter_count(salt: u64, count: u32) -> u32 {
    if count <= 1 {
        return count.max(1);
    }
    let low = u64::from(count - count / 2);
    u32::try_from(low + salt % u64::from(count)).unwrap_or(count)
}

/// ±25% around the nominal duration.
fn jitter_duration(salt: u64, d: Nanos) -> Nanos {
    let n = d.as_nanos();
    if n == 0 {
        return d;
    }
    Nanos::from_nanos(n - n / 4 + salt % (n / 2 + 1))
}

/// The stack-facing side of a [`FaultPlan`]: each injection site polls it
/// and gets a deterministic answer. Construction consumes the plan's seed
/// to fix fault magnitudes; after that the injector is pure bookkeeping
/// (per-site call counters plus one-shot/burst arming state).
#[derive(Debug)]
pub struct FaultInjector {
    state: Mutex<State>,
}

impl FaultInjector {
    /// Arms a plan. One `u64` is drawn from the seeded RNG per fault, in
    /// declaration order, so magnitudes do not depend on poll order.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let mut rng = rng::seeded(plan.seed);
        let armed = plan
            .faults
            .iter()
            .map(|f| {
                let salt = rng.gen::<u64>();
                let kind = match f.kind {
                    FaultKind::AexStorm { count } => FaultKind::AexStorm {
                        count: jitter_count(salt, count),
                    },
                    FaultKind::PagingSlow { factor, duration } => FaultKind::PagingSlow {
                        factor,
                        duration: jitter_duration(salt, duration),
                    },
                    FaultKind::OcallTimeout { delay, times } => FaultKind::OcallTimeout {
                        delay: jitter_duration(salt, delay),
                        times,
                    },
                    FaultKind::WorkerStall { delay } => FaultKind::WorkerStall {
                        delay: jitter_duration(salt, delay),
                    },
                    other => other,
                };
                Armed {
                    trigger: f.trigger,
                    kind,
                    fired: false,
                    remaining: 0,
                    window_until: Nanos::from_nanos(0),
                }
            })
            .collect();
        FaultInjector {
            state: Mutex::new(State {
                counters: Counters::default(),
                armed,
            }),
        }
    }

    /// Polls the enclave-execution site (one poll per `execute_in_enclave`
    /// invocation). Counts as one `call=` unit for storm triggers.
    pub fn on_enclave_exec(&self, now: Nanos) -> ExecFaults {
        let mut st = self.state.lock();
        st.counters.exec += 1;
        let at = st.counters.exec;
        let mut out = ExecFaults::default();
        for f in &mut st.armed {
            if f.fired || !due(f.trigger, at, now) {
                continue;
            }
            match f.kind {
                FaultKind::AexStorm { count } => {
                    f.fired = true;
                    out.aex_storm = Some(out.aex_storm.unwrap_or(0) + count);
                }
                FaultKind::EvictStorm => {
                    f.fired = true;
                    out.evict_storm = true;
                }
                // Call-triggered loss belongs to the EENTER site (the
                // failing entry is the observable event); only a time
                // trigger can destroy an enclave mid-execution.
                FaultKind::EnclaveLost if matches!(f.trigger, FaultTrigger::AtTime(_)) => {
                    f.fired = true;
                    out.lost = true;
                }
                _ => {}
            }
        }
        out
    }

    /// Polls the enclave-entry site (one poll per EENTER, i.e. per
    /// synchronous ecall dispatch). Counts as one `call=` unit for the
    /// enclave-loss triggers.
    pub fn on_eenter(&self, now: Nanos) -> EnterFaults {
        let mut st = self.state.lock();
        st.counters.enter += 1;
        let at = st.counters.enter;
        let mut out = EnterFaults::default();
        for f in &mut st.armed {
            if f.fired || !due(f.trigger, at, now) {
                continue;
            }
            match f.kind {
                FaultKind::EnclaveLost => {
                    f.fired = true;
                    out.lost = true;
                }
                FaultKind::EpcPoison => {
                    f.fired = true;
                    out.poison = true;
                }
                _ => {}
            }
        }
        out
    }

    /// Polls a paging (EWB/ELDU) site for an active cost slowdown.
    pub fn paging_slowdown(&self, now: Nanos) -> Option<PagingSlowdown> {
        let mut st = self.state.lock();
        let mut best: Option<PagingSlowdown> = None;
        for f in &mut st.armed {
            let FaultKind::PagingSlow { factor, duration } = f.kind else {
                continue;
            };
            let active = if !f.fired && due(f.trigger, 0, now) {
                f.fired = true;
                f.window_until = now + duration;
                Some(true)
            } else if f.fired && now < f.window_until {
                Some(false)
            } else {
                None
            };
            if let Some(opened) = active {
                let factor = f64::from(factor);
                best = Some(match best {
                    Some(b) => PagingSlowdown {
                        factor: b.factor.max(factor),
                        opened: b.opened || opened,
                    },
                    None => PagingSlowdown { factor, opened },
                });
            }
        }
        best
    }

    /// Polls the ocall site (one poll per application-level ocall, not
    /// per retry). A `Some` answer transfers the whole fault to the
    /// caller, which owns the retry loop.
    pub fn take_ocall_fault(&self, now: Nanos) -> Option<OcallFault> {
        let mut st = self.state.lock();
        st.counters.ocall += 1;
        let at = st.counters.ocall;
        for f in &mut st.armed {
            if f.fired || !due(f.trigger, at, now) {
                continue;
            }
            match f.kind {
                FaultKind::OcallFail { times } => {
                    f.fired = true;
                    return Some(OcallFault::Fail { times });
                }
                FaultKind::OcallTimeout { delay, times } => {
                    f.fired = true;
                    return Some(OcallFault::Timeout { delay, times });
                }
                _ => {}
            }
        }
        None
    }

    /// Polls the switchless-worker dispatch site; `Some(delay)` stalls
    /// the worker once.
    pub fn take_worker_stall(&self, now: Nanos) -> Option<Nanos> {
        let mut st = self.state.lock();
        st.counters.worker += 1;
        let at = st.counters.worker;
        for f in &mut st.armed {
            if f.fired || !due(f.trigger, at, now) {
                continue;
            }
            if let FaultKind::WorkerStall { delay } = f.kind {
                f.fired = true;
                return Some(delay);
            }
        }
        None
    }

    /// Polls the switchless post site; `true` means the ring reports
    /// full for this post attempt.
    pub fn take_ring_full(&self, now: Nanos) -> bool {
        let mut st = self.state.lock();
        st.counters.post += 1;
        let at = st.counters.post;
        for f in &mut st.armed {
            let FaultKind::RingFull { calls } = f.kind else {
                continue;
            };
            if !f.fired && due(f.trigger, at, now) {
                f.fired = true;
                f.remaining = calls;
            }
            if f.fired && f.remaining > 0 {
                f.remaining -= 1;
                return true;
            }
        }
        false
    }

    /// Polls the TCS bind site; `true` means this bind attempt finds all
    /// TCS pages busy. Retries poll again (and eventually succeed once
    /// the burst is exhausted).
    pub fn take_tcs_exhaust(&self, now: Nanos) -> bool {
        let mut st = self.state.lock();
        st.counters.tcs += 1;
        let at = st.counters.tcs;
        for f in &mut st.armed {
            let FaultKind::TcsExhaust { times } = f.kind else {
                continue;
            };
            if !f.fired && due(f.trigger, at, now) {
                f.fired = true;
                f.remaining = times;
            }
            if f.fired && f.remaining > 0 {
                f.remaining -= 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "seed=7;aex-storm@call=3:count=6;evict-storm@t=2ms;\
                        paging-slow@t=1ms:factor=4,dur=500us;ocall-timeout@call=2:delay=40us,times=2;\
                        worker-stall@call=1:delay=200us;ring-full@call=2:calls=3;tcs-exhaust@call=1:times=2;\
                        enclave_lost@call=9;epc_poison@t=4ms";

    #[test]
    fn parse_then_display_is_canonical_and_stable() {
        let plan = FaultPlan::parse(SPEC).unwrap();
        let canon = plan.to_string();
        let reparsed = FaultPlan::parse(&canon).unwrap();
        assert_eq!(plan, reparsed);
        assert_eq!(canon, reparsed.to_string(), "Display must be a fixpoint");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults.len(), 9);
    }

    #[test]
    fn defaults_become_explicit_in_canonical_form() {
        let plan = FaultPlan::parse("ocall-fail@call=1").unwrap();
        assert_eq!(plan.to_string(), "ocall-fail@call=1:times=1");
        let plan = FaultPlan::parse(" aex-storm@t=1s ").unwrap();
        assert_eq!(plan.to_string(), "aex-storm@t=1s:count=8");
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in [
            "aex-storm",                     // no trigger
            "aex-storm@soon",                // bad trigger
            "aex-storm@call=0",              // 1-based
            "frobnicate@call=1",             // unknown kind
            "aex-storm@call=1:verve=9",      // unknown param
            "aex-storm@call=1:count=0",      // zero count
            "paging-slow@call=3",            // needs t=
            "ocall-timeout@call=1:delay=4x", // bad duration
            "seed=banana",                   // bad seed
            "aex-storm@t=",                  // empty duration
            "enclave_lost@call=1:times=2",   // takes no params
            "epc_poison@t=1ms:count=1",      // takes no params
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn empty_specs_parse_to_the_empty_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse(" ; ;").unwrap(), FaultPlan::default());
        let seeded = FaultPlan::parse("seed=9").unwrap();
        assert_eq!(seeded, FaultPlan::seeded(9));
        assert!(seeded.is_empty());
        assert_eq!(seeded.to_string(), "seed=9");
    }

    #[test]
    fn empty_plans_never_fire() {
        let inj = FaultInjector::new(&FaultPlan::seeded(1234));
        for i in 0..100 {
            let now = Nanos::from_micros(i);
            assert_eq!(inj.on_enclave_exec(now), ExecFaults::default());
            assert_eq!(inj.on_eenter(now), EnterFaults::default());
            assert!(inj.paging_slowdown(now).is_none());
            assert!(inj.take_ocall_fault(now).is_none());
            assert!(inj.take_worker_stall(now).is_none());
            assert!(!inj.take_ring_full(now));
            assert!(!inj.take_tcs_exhaust(now));
        }
    }

    #[test]
    fn call_triggers_fire_on_the_nth_site_poll_exactly_once() {
        let plan =
            FaultPlan::seeded(1).with(FaultTrigger::AtCall(3), FaultKind::AexStorm { count: 4 });
        let inj = FaultInjector::new(&plan);
        let now = Nanos::from_nanos(0);
        assert_eq!(inj.on_enclave_exec(now).aex_storm, None);
        assert_eq!(inj.on_enclave_exec(now).aex_storm, None);
        let burst = inj.on_enclave_exec(now).aex_storm.unwrap();
        assert!(
            (2..=6).contains(&burst),
            "jitter stays within ±50%: {burst}"
        );
        assert_eq!(inj.on_enclave_exec(now).aex_storm, None, "one-shot");
    }

    #[test]
    fn time_triggers_fire_on_the_first_poll_past_t() {
        let plan = FaultPlan::seeded(1).with(
            FaultTrigger::AtTime(Nanos::from_micros(5)),
            FaultKind::EvictStorm,
        );
        let inj = FaultInjector::new(&plan);
        assert!(!inj.on_enclave_exec(Nanos::from_micros(4)).evict_storm);
        assert!(inj.on_enclave_exec(Nanos::from_micros(6)).evict_storm);
        assert!(!inj.on_enclave_exec(Nanos::from_micros(7)).evict_storm);
    }

    #[test]
    fn paging_slowdown_window_opens_once_and_expires() {
        let plan = FaultPlan::seeded(0).with(
            FaultTrigger::AtTime(Nanos::from_micros(10)),
            FaultKind::PagingSlow {
                factor: 4,
                duration: Nanos::from_micros(100),
            },
        );
        let inj = FaultInjector::new(&plan);
        assert!(inj.paging_slowdown(Nanos::from_micros(9)).is_none());
        let open = inj.paging_slowdown(Nanos::from_micros(10)).unwrap();
        assert!(open.opened);
        assert!((open.factor - 4.0).abs() < f64::EPSILON);
        let mid = inj.paging_slowdown(Nanos::from_micros(50)).unwrap();
        assert!(!mid.opened);
        // The jittered window is 75..=125 us past the trigger.
        assert!(inj.paging_slowdown(Nanos::from_micros(200)).is_none());
    }

    #[test]
    fn burst_kinds_consume_their_budget_then_stop() {
        let plan = FaultPlan::seeded(3)
            .with(FaultTrigger::AtCall(2), FaultKind::RingFull { calls: 3 })
            .with(FaultTrigger::AtCall(1), FaultKind::TcsExhaust { times: 2 });
        let inj = FaultInjector::new(&plan);
        let now = Nanos::from_nanos(0);
        let posts: Vec<bool> = (0..6).map(|_| inj.take_ring_full(now)).collect();
        assert_eq!(posts, [false, true, true, true, false, false]);
        let binds: Vec<bool> = (0..4).map(|_| inj.take_tcs_exhaust(now)).collect();
        assert_eq!(binds, [true, true, false, false]);
    }

    #[test]
    fn enclave_lost_call_trigger_fires_on_the_nth_entry_once() {
        let inj = FaultInjector::new(&FaultPlan::parse("enclave_lost@call=3").unwrap());
        let now = Nanos::from_nanos(0);
        assert_eq!(inj.on_eenter(now), EnterFaults::default());
        assert_eq!(inj.on_eenter(now), EnterFaults::default());
        let hit = inj.on_eenter(now);
        assert!(hit.lost && !hit.poison);
        assert_eq!(inj.on_eenter(now), EnterFaults::default(), "one-shot");
        // Exec-site polls never consume a call-triggered loss.
        assert!(!inj.on_enclave_exec(now).lost);
    }

    #[test]
    fn time_triggered_loss_unwinds_at_the_first_site_past_t() {
        let plan = FaultPlan::parse("enclave_lost@t=5us").unwrap();
        let inj = FaultInjector::new(&plan);
        assert!(!inj.on_enclave_exec(Nanos::from_micros(4)).lost);
        assert!(inj.on_enclave_exec(Nanos::from_micros(6)).lost);
        assert!(!inj.on_enclave_exec(Nanos::from_micros(7)).lost, "one-shot");
        // An idle enclave takes the same fault at its next entry instead.
        let inj = FaultInjector::new(&plan);
        assert!(!inj.on_eenter(Nanos::from_micros(4)).lost);
        assert!(inj.on_eenter(Nanos::from_micros(6)).lost);
    }

    #[test]
    fn epc_poison_fires_only_at_the_entry_site() {
        let inj = FaultInjector::new(&FaultPlan::parse("epc_poison@call=2").unwrap());
        let now = Nanos::from_nanos(0);
        assert!(!inj.on_enclave_exec(now).lost);
        assert_eq!(inj.on_eenter(now), EnterFaults::default());
        let hit = inj.on_eenter(now);
        assert!(hit.poison && !hit.lost);
        assert_eq!(inj.on_eenter(now), EnterFaults::default());
    }

    #[test]
    fn same_plan_arms_identical_injectors() {
        let plan = FaultPlan::parse(SPEC).unwrap();
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        for i in 0..50u64 {
            let now = Nanos::from_micros(i * 100);
            assert_eq!(a.on_enclave_exec(now), b.on_enclave_exec(now));
            assert_eq!(a.on_eenter(now), b.on_eenter(now));
            assert_eq!(a.paging_slowdown(now), b.paging_slowdown(now));
            assert_eq!(a.take_ocall_fault(now), b.take_ocall_fault(now));
            assert_eq!(a.take_worker_stall(now), b.take_worker_stall(now));
            assert_eq!(a.take_ring_full(now), b.take_ring_full(now));
            assert_eq!(a.take_tcs_exhaust(now), b.take_tcs_exhaust(now));
        }
    }

    #[test]
    fn seeds_change_magnitudes_but_not_schedules() {
        let base = "aex-storm@call=1:count=100;worker-stall@call=1:delay=100us";
        let a = FaultInjector::new(&FaultPlan::parse(&format!("seed=1;{base}")).unwrap());
        let b = FaultInjector::new(&FaultPlan::parse(&format!("seed=2;{base}")).unwrap());
        let now = Nanos::from_nanos(0);
        let (sa, sb) = (a.on_enclave_exec(now), b.on_enclave_exec(now));
        assert!(sa.aex_storm.is_some() && sb.aex_storm.is_some());
        assert_ne!(
            sa.aex_storm, sb.aex_storm,
            "different seeds, different burst sizes"
        );
        assert!(a.take_worker_stall(now).is_some());
        assert!(b.take_worker_stall(now).is_some());
    }
}
