//! The shared virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::Nanos;

/// A shareable, monotonically advancing virtual clock.
///
/// Cloning a `Clock` yields a handle onto the same underlying time source;
/// all components of a simulation (enclaves, runtimes, the logger) share one
/// clock so their timestamps are mutually consistent.
///
/// The clock only moves when a component explicitly [`advance`](Clock::advance)s
/// it — usually to account for modelled computation or transition costs —
/// which makes every run bit-reproducible.
///
/// # Examples
///
/// ```
/// use sim_core::{Clock, Nanos};
///
/// let clock = Clock::new();
/// let handle = clock.clone();
/// clock.advance(Nanos::from_micros(10));
/// assert_eq!(handle.now(), Nanos::from_micros(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now_ns: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        Nanos::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `dur` and returns the new time.
    pub fn advance(&self, dur: Nanos) -> Nanos {
        let new = self.now_ns.fetch_add(dur.as_nanos(), Ordering::SeqCst) + dur.as_nanos();
        Nanos::from_nanos(new)
    }

    /// Moves the clock forward to `t` if `t` is in the future; does nothing
    /// otherwise. Returns the resulting current time.
    ///
    /// Used by the deterministic scheduler when a logical thread sleeps until
    /// an absolute deadline.
    pub fn advance_to(&self, t: Nanos) -> Nanos {
        let target = t.as_nanos();
        let mut cur = self.now_ns.load(Ordering::SeqCst);
        while cur < target {
            match self
                .now_ns
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        Nanos::from_nanos(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), Nanos::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let c = Clock::new();
        c.advance(Nanos::from_nanos(5));
        c.advance(Nanos::from_nanos(7));
        assert_eq!(c.now().as_nanos(), 12);
    }

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(Nanos::from_micros(1));
        assert_eq!(b.now(), Nanos::from_micros(1));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::new();
        c.advance(Nanos::from_nanos(100));
        // Going "back" is a no-op.
        assert_eq!(c.advance_to(Nanos::from_nanos(50)).as_nanos(), 100);
        assert_eq!(c.now().as_nanos(), 100);
        // Going forward works.
        assert_eq!(c.advance_to(Nanos::from_nanos(250)).as_nanos(), 250);
    }
}
