//! Strongly-typed virtual time quantities.
//!
//! [`Nanos`] is the universal currency of the simulation: every cost model,
//! event timestamp and statistic is expressed in virtual nanoseconds.
//! [`Cycles`] exists because the paper reports transition costs both in
//! cycles and nanoseconds; conversions go through an explicit CPU frequency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A quantity of virtual time, in nanoseconds.
///
/// `Nanos` is an absolute timestamp when returned by
/// [`Clock::now`](crate::Clock::now) and a duration everywhere else; both
/// views share the same arithmetic.
///
/// # Examples
///
/// ```
/// use sim_core::Nanos;
///
/// let t = Nanos::from_micros(5) + Nanos::from_nanos(120);
/// assert_eq!(t.as_nanos(), 5_120);
/// assert_eq!(t.to_string(), "5.120us");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration / epoch timestamp.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a quantity from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a quantity from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a quantity from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a quantity from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Subtraction clamped at zero rather than panicking on underflow.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// Scales the quantity by a floating-point factor, rounding to the
    /// nearest nanosecond. Factors must be non-negative. The computation
    /// goes through `f64`, so results are exact only up to 2⁵³ ns
    /// (≈104 days) — far beyond any simulated duration.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Nanos {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Nanos((self.0 as f64 * factor).round() as u64)
    }

    /// Converts to CPU cycles at the given core frequency in GHz.
    pub fn to_cycles(self, ghz: f64) -> Cycles {
        Cycles((self.0 as f64 * ghz).round() as u64)
    }

    /// Whether this is the zero quantity.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two quantities.
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// The smaller of two quantities.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("Nanos subtraction underflow"),
        )
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    /// Auto-scaling display: `742ns`, `5.120us`, `3.940ms`, `31.000s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1_000.0)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1_000_000_000.0)
        }
    }
}

/// A quantity of CPU cycles.
///
/// # Examples
///
/// ```
/// use sim_core::Cycles;
///
/// let c = Cycles::new(5_850);
/// // At 2.746 GHz (effective TSC rate of the paper's testbed measurements)
/// // this is roughly 2,130 ns.
/// assert_eq!(c.to_nanos(2.746).as_nanos(), 2_130);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub(crate) u64);

impl Cycles {
    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to nanoseconds at the given frequency in GHz.
    pub fn to_nanos(self, ghz: f64) -> Nanos {
        Nanos((self.0 as f64 / ghz).round() as u64)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(
            self.0
                .checked_sub(rhs.0)
                .expect("Cycles subtraction underflow"),
        )
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_nanos(1_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_nanos(1_000_000_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Nanos::from_nanos(1_500);
        let b = Nanos::from_nanos(500);
        assert_eq!((a + b).as_nanos(), 2_000);
        assert_eq!((a - b).as_nanos(), 1_000);
        assert_eq!((a * 3).as_nanos(), 4_500);
        assert_eq!((a / 3).as_nanos(), 500);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Nanos::from_nanos(5);
        let b = Nanos::from_nanos(10);
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
        assert_eq!(b.saturating_sub(a).as_nanos(), 5);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Nanos::from_nanos(1) - Nanos::from_nanos(2);
    }

    #[test]
    fn display_autoscales() {
        assert_eq!(Nanos::from_nanos(742).to_string(), "742ns");
        assert_eq!(Nanos::from_nanos(5_120).to_string(), "5.120us");
        assert_eq!(Nanos::from_millis(3940).to_string(), "3.940s");
        assert_eq!(Nanos::from_micros(3940).to_string(), "3.940ms");
    }

    #[test]
    fn cycles_nanos_conversion() {
        let ns = Nanos::from_nanos(1_000);
        assert_eq!(ns.to_cycles(3.4).get(), 3_400);
        assert_eq!(Cycles::new(3_400).to_nanos(3.4), ns);
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Nanos::from_nanos(100).scale(1.5).as_nanos(), 150);
        assert_eq!(Nanos::from_nanos(3).scale(0.5).as_nanos(), 2); // rounds .5 up
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_rejects_negative() {
        let _ = Nanos::from_nanos(1).scale(-1.0);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Nanos = (1..=4).map(Nanos::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn min_max() {
        let a = Nanos::from_nanos(3);
        let b = Nanos::from_nanos(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
