//! Hardware cost profiles.
//!
//! The paper measures enclave transition round-trips in three hardware
//! settings (§2.3.1):
//!
//! | setting | cycles | time |
//! |---|---|---|
//! | unmodified SGX CPU | ≈5,850 | ≈2,130 ns |
//! | + Spectre SDK & microcode updates | ≈10,170 | ≈3,850 ns |
//! | + Foreshadow (L1TF) microcode update | ≈13,100 | ≈4,890 ns |
//!
//! [`CostModel`] carries these plus the SDK software dispatch costs derived
//! from Table 2 (an empty SDK ecall costs 4,205 ns end-to-end on the
//! unpatched testbed; an additional empty ocall costs 3,808 ns) and paging
//! costs. The whole simulation charges virtual time through this table.

use crate::time::{Cycles, Nanos};

/// Which microcode/SDK mitigation level the simulated machine runs.
///
/// # Examples
///
/// ```
/// use sim_core::HwProfile;
///
/// // Transitions get monotonically more expensive with each mitigation.
/// let base = HwProfile::Unpatched.cost_model().transition_roundtrip();
/// let spectre = HwProfile::Spectre.cost_model().transition_roundtrip();
/// let l1tf = HwProfile::Foreshadow.cost_model().transition_roundtrip();
/// assert!(base < spectre && spectre < l1tf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HwProfile {
    /// Unmodified Intel SGX-capable processor (no Spectre/L1TF mitigations).
    #[default]
    Unpatched,
    /// SDK and microcode updates mitigating Spectre applied.
    Spectre,
    /// Additionally the Foreshadow (L1 Terminal Fault) microcode update.
    Foreshadow,
}

impl HwProfile {
    /// All profiles, in mitigation order.
    pub const ALL: [HwProfile; 3] = [
        HwProfile::Unpatched,
        HwProfile::Spectre,
        HwProfile::Foreshadow,
    ];

    /// The cost table for this profile.
    pub fn cost_model(self) -> CostModel {
        CostModel::for_profile(self)
    }

    /// Human-readable label used in reports and benches.
    pub fn label(self) -> &'static str {
        match self {
            HwProfile::Unpatched => "unpatched",
            HwProfile::Spectre => "+Spectre",
            HwProfile::Foreshadow => "+Spectre+L1TF",
        }
    }

    /// Filename-safe label used in campaign cell paths and spec files.
    pub fn file_label(self) -> &'static str {
        match self {
            HwProfile::Unpatched => "unpatched",
            HwProfile::Spectre => "spectre",
            HwProfile::Foreshadow => "l1tf",
        }
    }

    /// Parses a profile name as written in specs and CLI flags. Accepts
    /// the [`HwProfile::file_label`] forms plus `foreshadow` as an alias
    /// for `l1tf`.
    pub fn parse(s: &str) -> Option<HwProfile> {
        match s {
            "unpatched" => Some(HwProfile::Unpatched),
            "spectre" => Some(HwProfile::Spectre),
            "l1tf" | "foreshadow" => Some(HwProfile::Foreshadow),
            _ => None,
        }
    }
}

impl std::fmt::Display for HwProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The complete virtual-time cost table of a simulated SGX machine.
///
/// All fields are public so experiments can build ablated variants; use
/// [`CostModel::for_profile`] for the calibrated defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Which profile this table was derived from.
    pub profile: HwProfile,
    /// Nominal core frequency in GHz (Xeon E3-1230 v5 @ 3.40 GHz).
    pub cpu_ghz: f64,
    /// Cost of the `EENTER` instruction path (entering the enclave).
    pub eenter: Nanos,
    /// Cost of the `EEXIT` instruction path (leaving the enclave).
    pub eexit: Nanos,
    /// Cost of an asynchronous enclave exit (state save + exit).
    pub aex_exit: Nanos,
    /// Cost of `ERESUME` after an AEX.
    pub eresume: Nanos,
    /// URTS software overhead per ecall (TCS lookup, argument setup).
    pub urts_dispatch: Nanos,
    /// TRTS software overhead per ecall (trampoline dispatch).
    pub trts_dispatch: Nanos,
    /// Software overhead per ocall beyond the raw transition (table lookup,
    /// frame setup on the untrusted stack).
    pub ocall_dispatch: Nanos,
    /// Interval between timer interrupts; each one hitting an in-enclave
    /// computation causes one AEX. Calibrated so a 45.4 ms ecall sees
    /// ≈11.5 AEXs (Table 2).
    pub timer_quantum: Nanos,
    /// Cost to evict one EPC page (`EWB`: re-encryption + version tree).
    pub page_out: Nanos,
    /// Cost to load one page back into the EPC (`ELDU`: decrypt + verify).
    pub page_in: Nanos,
    /// Marshalling cost per byte copied across the enclave boundary for
    /// `in`/`out` pointer parameters, in tenths of a nanosecond.
    pub copy_tenth_ns_per_byte: u64,
    /// Cost for a switchless caller to publish a request slot into the
    /// shared-memory ring (cache-coherent stores + release fence). No
    /// enclave transition happens, so this is mitigation-independent.
    pub switchless_post: Nanos,
    /// Cost for a switchless caller to consume the response slot once the
    /// worker marked it done (acquire load + result copy-back).
    pub switchless_complete: Nanos,
    /// Cost for a worker thread to claim a queued slot, dispatch the call
    /// body and write the result back (HotCalls-style shared-memory
    /// round-trip, minus the call body itself).
    pub switchless_worker_dispatch: Nanos,
    /// Cost of one polling iteration (a `pause`-loop check of the ring
    /// state), charged to whoever spins — callers waiting for a worker
    /// and workers waiting for work.
    pub switchless_poll_iteration: Cycles,
    /// Transition round-trip as reported by the paper, in cycles. Kept
    /// verbatim (the paper's cycle and ns figures imply a TSC rate below the
    /// nominal 3.4 GHz; we treat the ns figures as ground truth).
    pub reported_roundtrip_cycles: Cycles,
}

impl CostModel {
    /// The calibrated cost table for `profile`.
    pub fn for_profile(profile: HwProfile) -> CostModel {
        let (roundtrip_ns, cycles) = match profile {
            HwProfile::Unpatched => (2_130, 5_850),
            HwProfile::Spectre => (3_850, 10_170),
            HwProfile::Foreshadow => (4_890, 13_100),
        };
        // Split the measured round-trip across entry (55%) and exit (45%);
        // only the sum is observable in any experiment.
        let eenter = Nanos::from_nanos(roundtrip_ns * 55 / 100);
        let eexit = Nanos::from_nanos(roundtrip_ns - roundtrip_ns * 55 / 100);
        CostModel {
            profile,
            cpu_ghz: 3.4,
            eenter,
            eexit,
            // AEX + ERESUME round-trips cost about the same as a synchronous
            // transition round-trip on the same mitigation level.
            aex_exit: eexit,
            eresume: eenter,
            // Table 2: empty SDK ecall = 4,205 ns total on the unpatched
            // testbed => 2,075 ns of software dispatch on top of the raw
            // 2,130 ns transition. The software share is mitigation-
            // independent.
            urts_dispatch: Nanos::from_nanos(1_200),
            trts_dispatch: Nanos::from_nanos(875),
            // Table 2: ecall+ocall = 8,013 ns => the ocall adds 3,808 ns =
            // raw round-trip (2,130) + 1,678 ns dispatch.
            ocall_dispatch: Nanos::from_nanos(1_678),
            // 45,377 us / 11.51 AEXs ≈ 3.94 ms between timer interrupts.
            timer_quantum: Nanos::from_micros(3_943),
            page_out: Nanos::from_micros(12),
            page_in: Nanos::from_micros(12),
            copy_tenth_ns_per_byte: 1, // 0.1 ns/B ≈ 10 GB/s boundary copies
            // Switchless (HotCalls-style) shared-memory calls never leave
            // the enclave, so their cost does not grow with the Spectre/
            // L1TF mitigations — that widening gap is exactly why the
            // UseSwitchless recommendation gets more valuable per profile.
            // HotCalls reports ≈620 cycles (~180 ns) per call round-trip;
            // split across post, worker dispatch and completion.
            switchless_post: Nanos::from_nanos(40),
            switchless_complete: Nanos::from_nanos(40),
            switchless_worker_dispatch: Nanos::from_nanos(100),
            // One pause-loop poll of a shared cache line: ~170 cycles
            // (~50 ns at 3.4 GHz) covering the pause latency plus the
            // cross-core cache-coherence probe.
            switchless_poll_iteration: Cycles::new(170),
            reported_roundtrip_cycles: Cycles::new(cycles),
        }
    }

    /// Raw `EENTER`+`EEXIT` round-trip — what §2.3.1 measures directly.
    pub fn transition_roundtrip(&self) -> Nanos {
        self.eenter + self.eexit
    }

    /// End-to-end cost of an empty SDK ecall: raw transition plus URTS and
    /// TRTS dispatch. 4,205 ns on the unpatched profile (Table 2, "Native").
    pub fn sdk_ecall_overhead(&self) -> Nanos {
        self.transition_roundtrip() + self.urts_dispatch + self.trts_dispatch
    }

    /// Cost an empty ocall adds to its surrounding ecall: one raw transition
    /// round-trip plus ocall dispatch. 3,808 ns on the unpatched profile.
    pub fn sdk_ocall_overhead(&self) -> Nanos {
        self.transition_roundtrip() + self.ocall_dispatch
    }

    /// Cost of one AEX + ERESUME round-trip.
    pub fn aex_roundtrip(&self) -> Nanos {
        self.aex_exit + self.eresume
    }

    /// Marshalling cost for copying `bytes` across the enclave boundary.
    pub fn copy_cost(&self, bytes: usize) -> Nanos {
        Nanos::from_nanos(bytes as u64 * self.copy_tenth_ns_per_byte / 10)
    }

    /// End-to-end overhead of a switchless call when a worker picks the
    /// slot up immediately: post + worker dispatch + completion. Compare
    /// with [`CostModel::sdk_ecall_overhead`]/[`CostModel::sdk_ocall_overhead`]
    /// to see the per-call saving.
    pub fn switchless_call_overhead(&self) -> Nanos {
        self.switchless_post + self.switchless_complete + self.switchless_worker_dispatch
    }

    /// Virtual time burned by `iterations` polling loop passes.
    pub fn switchless_spin_cost(&self, iterations: u64) -> Nanos {
        Cycles::new(self.switchless_poll_iteration.get() * iterations).to_nanos(self.cpu_ghz)
    }

    /// What one switchless ocall saves over the classic synchronous path
    /// (zero when switchless would not help). The dominant term is the
    /// transition round-trip, which is why the saving grows with each
    /// mitigation level.
    pub fn switchless_ocall_saving(&self) -> Nanos {
        self.sdk_ocall_overhead()
            .saturating_sub(self.switchless_call_overhead())
    }

    /// What one switchless ecall saves over the classic synchronous path.
    pub fn switchless_ecall_saving(&self) -> Nanos {
        self.sdk_ecall_overhead()
            .saturating_sub(self.switchless_call_overhead())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_match_paper() {
        assert_eq!(
            HwProfile::Unpatched.cost_model().transition_roundtrip(),
            Nanos::from_nanos(2_130)
        );
        assert_eq!(
            HwProfile::Spectre.cost_model().transition_roundtrip(),
            Nanos::from_nanos(3_850)
        );
        assert_eq!(
            HwProfile::Foreshadow.cost_model().transition_roundtrip(),
            Nanos::from_nanos(4_890)
        );
    }

    #[test]
    fn spectre_ratio_is_about_1_74x() {
        let base = HwProfile::Unpatched.cost_model().transition_roundtrip();
        let spectre = HwProfile::Spectre.cost_model().transition_roundtrip();
        let ratio = spectre.as_nanos() as f64 / base.as_nanos() as f64;
        assert!((ratio - 1.74).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn l1tf_ratio_is_about_2_24x() {
        let base = HwProfile::Unpatched.cost_model().transition_roundtrip();
        let l1tf = HwProfile::Foreshadow.cost_model().transition_roundtrip();
        let ratio = l1tf.as_nanos() as f64 / base.as_nanos() as f64;
        assert!((ratio - 2.24).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn empty_sdk_ecall_is_4205ns_unpatched() {
        // Table 2, experiment (1), "Native" row.
        let cm = HwProfile::Unpatched.cost_model();
        assert_eq!(cm.sdk_ecall_overhead(), Nanos::from_nanos(4_205));
    }

    #[test]
    fn ecall_plus_ocall_is_8013ns_unpatched() {
        // Table 2, experiment (2), "Native" row.
        let cm = HwProfile::Unpatched.cost_model();
        assert_eq!(
            cm.sdk_ecall_overhead() + cm.sdk_ocall_overhead(),
            Nanos::from_nanos(8_013)
        );
    }

    #[test]
    fn timer_quantum_yields_11_5_aex_per_45ms() {
        let cm = HwProfile::Unpatched.cost_model();
        let aex = Nanos::from_micros(45_377).as_nanos() / cm.timer_quantum.as_nanos();
        assert!((11..=12).contains(&aex), "aex count {aex}");
    }

    #[test]
    fn copy_cost_scales_with_size() {
        let cm = HwProfile::Unpatched.cost_model();
        assert_eq!(cm.copy_cost(0), Nanos::ZERO);
        assert_eq!(cm.copy_cost(10_240).as_nanos(), 1_024);
    }

    #[test]
    fn switchless_overhead_is_mitigation_independent() {
        let base = HwProfile::Unpatched.cost_model().switchless_call_overhead();
        for p in HwProfile::ALL {
            assert_eq!(p.cost_model().switchless_call_overhead(), base, "{p}");
        }
        // ≈180 ns, the HotCalls ballpark — far below any transition.
        assert_eq!(base, Nanos::from_nanos(180));
    }

    #[test]
    fn switchless_saving_grows_with_mitigations() {
        let savings: Vec<Nanos> = HwProfile::ALL
            .iter()
            .map(|p| p.cost_model().switchless_ocall_saving())
            .collect();
        assert!(
            savings[0] < savings[1] && savings[1] < savings[2],
            "{savings:?}"
        );
        // Unpatched: 3,808 ns ocall overhead - 180 ns switchless.
        assert_eq!(savings[0], Nanos::from_nanos(3_628));
        // Ecall saving likewise dominates the switchless overhead.
        let cm = HwProfile::Unpatched.cost_model();
        assert_eq!(cm.switchless_ecall_saving(), Nanos::from_nanos(4_025));
    }

    #[test]
    fn spin_cost_converts_cycles_at_nominal_frequency() {
        let cm = HwProfile::Unpatched.cost_model();
        assert_eq!(cm.switchless_spin_cost(0), Nanos::ZERO);
        // 170 cycles at 3.4 GHz = 50 ns per iteration.
        assert_eq!(cm.switchless_spin_cost(1), Nanos::from_nanos(50));
        assert_eq!(cm.switchless_spin_cost(20), Nanos::from_nanos(1_000));
    }

    #[test]
    fn reported_cycles_match() {
        assert_eq!(
            HwProfile::Foreshadow
                .cost_model()
                .reported_roundtrip_cycles
                .get(),
            13_100
        );
    }
}
