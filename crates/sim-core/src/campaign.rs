//! Declarative campaign specs: the grammar behind `sgxperf campaign`.
//!
//! A [`CampaignSpec`] names a scenario matrix — {workloads × hardware
//! profiles × fault plans × switchless configs × seeds} — plus the
//! baseline cell every other cell is diffed against. Like the
//! [`FaultPlan`](crate::fault::FaultPlan) grammar it is hand-rolled (no
//! serde) and `Display` is the grammar's canonical fixpoint: parsing the
//! rendered form yields an equal spec, and rendering that spec yields the
//! same bytes. Defaults become explicit in the canonical form, so a spec
//! file round-tripped through `Display` documents every knob.
//!
//! The surface is a TOML-ish subset — `[section]` headers, `key = value`
//! lines, `"strings"`, integers and single-line `[lists]`, `#` comments:
//!
//! ```text
//! [campaign]
//! name = "stressors"        # required: campaign + output-dir name
//! jobs = 0                  # worker threads; 0 = all cores
//! threshold = 10            # diff-gate regression threshold, percent
//!
//! [matrix]
//! workloads = ["epc_thrash", "ecall_storm"]
//! profiles = ["unpatched", "spectre", "l1tf"]
//! switchless = ["off", "on:2"]      # optional; default ["off"]
//! seeds = [1, 2]
//!
//! [faults]                  # named fault plans (FaultPlan grammar);
//! none = ""                 # optional; default is this single entry
//! storm = "aex-storm@call=3:count=6"
//!
//! [baseline]                # the cell the others are diffed against,
//! faults = "none"           # per (workload, profile, switchless) group;
//! seed = 1                  # defaults: first plan name, first seed
//!
//! [robustness]              # cell supervision knobs (all optional)
//! cell_deadline = "5s"      # wall-clock kill deadline; "0ns" = none
//! retries = 1               # re-runs granted to a failed cell
//! event_budget = 0          # scheduling points per attempt; 0 = unlimited
//! ```
//!
//! [`CampaignSpec::expand`] flattens the axes into the deterministic cell
//! matrix; the sim layer knows nothing about what a workload name *means*
//! (the workloads crate resolves and executes them) — it owns only the
//! grammar and the matrix algebra, exactly like `FaultPlan` owns the
//! fault grammar while the SDK owns the injection sites.

use std::fmt;

use crate::fault::{fmt_duration, parse_duration, FaultPlan};
use crate::hw::HwProfile;
use crate::Nanos;

/// One point on the switchless axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchlessAxis {
    /// Classic synchronous transitions only.
    Off,
    /// Switchless rings enabled with this many workers (per direction —
    /// the workload decides whether they serve ecalls, ocalls or both).
    On {
        /// Worker threads; at least 1.
        workers: u32,
    },
}

impl SwitchlessAxis {
    /// Parses an axis label: `off` or `on:N`.
    #[must_use]
    pub fn parse(s: &str) -> Option<SwitchlessAxis> {
        if s == "off" {
            return Some(SwitchlessAxis::Off);
        }
        let n = s.strip_prefix("on:")?;
        match n.parse::<u32>() {
            Ok(workers) if workers >= 1 => Some(SwitchlessAxis::On { workers }),
            _ => None,
        }
    }

    /// Filename-safe label (`off`, `on2`).
    #[must_use]
    pub fn file_label(self) -> String {
        match self {
            SwitchlessAxis::Off => "off".to_string(),
            SwitchlessAxis::On { workers } => format!("on{workers}"),
        }
    }
}

impl fmt::Display for SwitchlessAxis {
    /// The parseable label (`off`, `on:N`) — the grammar fixpoint form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchlessAxis::Off => f.write_str("off"),
            SwitchlessAxis::On { workers } => write!(f, "on:{workers}"),
        }
    }
}

/// A parsed, validated campaign spec. Field order mirrors the canonical
/// rendered form.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (identifier; also the default output-dir stem).
    pub name: String,
    /// Worker threads executing cells; 0 means "all cores".
    pub jobs: u32,
    /// Diff-gate regression threshold in percent (default 10).
    pub threshold_pct: u32,
    /// Workload names, resolved by the workloads layer.
    pub workloads: Vec<String>,
    /// Hardware profiles.
    pub profiles: Vec<HwProfile>,
    /// Switchless axis (default `[off]`).
    pub switchless: Vec<SwitchlessAxis>,
    /// Seeds; each perturbs fault-plan jitter and seed-aware workloads.
    pub seeds: Vec<u64>,
    /// Named fault plans, in declaration order (default `none = ""`).
    pub plans: Vec<(String, FaultPlan)>,
    /// Plan name of the baseline cell of each comparison group.
    pub baseline_plan: String,
    /// Seed of the baseline cell of each comparison group.
    pub baseline_seed: u64,
    /// Wall-clock deadline per cell attempt; zero disables the watchdog.
    pub cell_deadline: Nanos,
    /// Extra attempts granted to a failed cell before it is quarantined
    /// as broken (default 1; a cell that passes on a retry is `flaky`).
    pub retries: u32,
    /// Scheduling-point budget per cell attempt, enforced inside the
    /// simulation for engine-identical, deterministic timeouts; zero
    /// means unlimited.
    pub event_budget: u64,
}

/// One expanded cell of the campaign matrix. Axis values are carried as
/// indices into the owning [`CampaignSpec`]'s axis vectors so the cell
/// stays `Copy` and the spec stays the single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCoord {
    /// Position in the expansion — the cell's identity in summaries.
    pub index: usize,
    /// Index into [`CampaignSpec::workloads`].
    pub workload: usize,
    /// The hardware profile.
    pub profile: HwProfile,
    /// Index into [`CampaignSpec::plans`].
    pub plan: usize,
    /// The switchless axis value.
    pub switchless: SwitchlessAxis,
    /// The seed.
    pub seed: u64,
    /// Index (into the same expansion) of the cell this one is diffed
    /// against. Baseline cells point at themselves.
    pub baseline: usize,
}

/// A malformed campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based source line, or 0 when the error is not tied to one line.
    pub line: usize,
    msg: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "bad campaign spec: {}", self.msg)
        } else {
            write!(f, "bad campaign spec: line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        line,
        msg: msg.into(),
    })
}

/// Identifier charset shared by campaign, workload and plan names — they
/// all become path components of archived traces.
fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

/// Strips a trailing `#` comment, honouring quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

/// One raw value: string, integer, or single-line list of either.
#[derive(Debug)]
enum Value<'a> {
    Str(&'a str),
    Int(u64),
    List(Vec<Value<'a>>),
}

fn parse_scalar(line: usize, s: &str) -> Result<Value<'_>, SpecError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return err(line, format!("unterminated string `{s}`"));
        };
        if inner.contains('"') {
            return err(line, format!("stray quote inside string `{s}`"));
        }
        return Ok(Value::Str(inner));
    }
    match s.parse::<u64>() {
        Ok(n) => Ok(Value::Int(n)),
        Err(_) => err(
            line,
            format!("bad value `{s}` (want a \"string\", an integer or a [list])"),
        ),
    }
}

fn parse_value(line: usize, s: &str) -> Result<Value<'_>, SpecError> {
    let s = s.trim();
    let Some(rest) = s.strip_prefix('[') else {
        return parse_scalar(line, s);
    };
    let Some(inner) = rest.strip_suffix(']') else {
        return err(
            line,
            format!("unterminated list `{s}` (lists are single-line)"),
        );
    };
    let mut items = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        items.push(parse_scalar(line, item)?);
    }
    Ok(Value::List(items))
}

impl Value<'_> {
    fn as_str(&self, line: usize, key: &str) -> Result<&str, SpecError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => err(line, format!("`{key}` wants a \"string\"")),
        }
    }

    fn as_int(&self, line: usize, key: &str) -> Result<u64, SpecError> {
        match self {
            Value::Int(n) => Ok(*n),
            _ => err(line, format!("`{key}` wants an integer")),
        }
    }

    fn as_str_list(&self, line: usize, key: &str) -> Result<Vec<&str>, SpecError> {
        let Value::List(items) = self else {
            return err(line, format!("`{key}` wants a [list of \"strings\"]"));
        };
        items.iter().map(|v| v.as_str(line, key)).collect()
    }

    fn as_int_list(&self, line: usize, key: &str) -> Result<Vec<u64>, SpecError> {
        let Value::List(items) = self else {
            return err(line, format!("`{key}` wants a [list of integers]"));
        };
        items.iter().map(|v| v.as_int(line, key)).collect()
    }
}

fn no_duplicates<T: PartialEq + fmt::Display>(
    line: usize,
    key: &str,
    items: &[T],
) -> Result<(), SpecError> {
    for (i, a) in items.iter().enumerate() {
        if items[..i].iter().any(|b| b == a) {
            return err(line, format!("duplicate `{a}` in `{key}`"));
        }
    }
    Ok(())
}

impl CampaignSpec {
    /// Parses a campaign spec. See the [module docs](self) for the
    /// grammar; `Display` renders the canonical form (defaults explicit),
    /// and parsing that form yields an equal spec.
    ///
    /// # Errors
    ///
    /// Unknown sections or keys, duplicate keys or axis entries, type
    /// mismatches, malformed fault plans and switchless labels, baselines
    /// naming undeclared plans or seeds — all with the offending line.
    pub fn parse(src: &str) -> Result<CampaignSpec, SpecError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Section {
            None,
            Campaign,
            Matrix,
            Faults,
            Baseline,
            Robustness,
        }
        let mut section = Section::None;
        let mut name: Option<(usize, String)> = None;
        let mut jobs: Option<u32> = None;
        let mut threshold: Option<u32> = None;
        let mut workloads: Option<(usize, Vec<String>)> = None;
        let mut profiles: Option<(usize, Vec<HwProfile>)> = None;
        let mut switchless: Option<(usize, Vec<SwitchlessAxis>)> = None;
        let mut seeds: Option<(usize, Vec<u64>)> = None;
        let mut plans: Vec<(String, FaultPlan)> = Vec::new();
        let mut faults_declared = false;
        let mut baseline_plan: Option<(usize, String)> = None;
        let mut baseline_seed: Option<(usize, u64)> = None;
        let mut cell_deadline: Option<Nanos> = None;
        let mut retries: Option<u32> = None;
        let mut event_budget: Option<u64> = None;

        for (i, raw) in src.lines().enumerate() {
            let ln = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(header) = rest.strip_suffix(']') else {
                    return err(ln, format!("unterminated section header `{line}`"));
                };
                section = match header.trim() {
                    "campaign" => Section::Campaign,
                    "matrix" => Section::Matrix,
                    "faults" => {
                        faults_declared = true;
                        Section::Faults
                    }
                    "baseline" => Section::Baseline,
                    "robustness" => Section::Robustness,
                    other => {
                        return err(
                            ln,
                            format!(
                                "unknown section `[{other}]` (want [campaign], \
                                 [matrix], [faults], [baseline] or [robustness])"
                            ),
                        )
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(ln, format!("expected `key = value`, got `{line}`"));
            };
            let (key, value) = (key.trim(), parse_value(ln, value)?);
            macro_rules! set_once {
                ($slot:ident, $val:expr) => {{
                    if $slot.is_some() {
                        return err(ln, format!("duplicate key `{key}`"));
                    }
                    $slot = Some($val);
                }};
            }
            match section {
                Section::None => {
                    return err(ln, format!("`{key}` outside any [section]"));
                }
                Section::Campaign => match key {
                    "name" => {
                        let v = value.as_str(ln, key)?;
                        if !is_ident(v) {
                            return err(ln, format!("bad campaign name `{v}` (want [a-z0-9_-]+)"));
                        }
                        set_once!(name, (ln, v.to_string()));
                    }
                    "jobs" => {
                        let v = value.as_int(ln, key)?;
                        let Ok(v) = u32::try_from(v) else {
                            return err(ln, format!("`jobs` out of range: {v}"));
                        };
                        set_once!(jobs, v);
                    }
                    "threshold" => {
                        let v = value.as_int(ln, key)?;
                        match u32::try_from(v) {
                            Ok(v) if v >= 1 => set_once!(threshold, v),
                            _ => {
                                return err(
                                    ln,
                                    format!("`threshold` wants a positive percentage, got {v}"),
                                )
                            }
                        }
                    }
                    other => {
                        return err(
                            ln,
                            format!(
                                "unknown key `{other}` in [campaign] \
                                 (want name, jobs or threshold)"
                            ),
                        )
                    }
                },
                Section::Matrix => match key {
                    "workloads" => {
                        let items = value.as_str_list(ln, key)?;
                        let mut out = Vec::new();
                        for w in items {
                            if !is_ident(w) {
                                return err(
                                    ln,
                                    format!("bad workload name `{w}` (want [a-z0-9_-]+)"),
                                );
                            }
                            out.push(w.to_string());
                        }
                        if out.is_empty() {
                            return err(ln, "`workloads` must not be empty");
                        }
                        no_duplicates(ln, key, &out)?;
                        set_once!(workloads, (ln, out));
                    }
                    "profiles" => {
                        let items = value.as_str_list(ln, key)?;
                        let mut out = Vec::new();
                        for p in items {
                            let Some(profile) = HwProfile::parse(p) else {
                                return err(
                                    ln,
                                    format!(
                                        "unknown profile `{p}` \
                                         (want unpatched, spectre or l1tf)"
                                    ),
                                );
                            };
                            out.push(profile);
                        }
                        if out.is_empty() {
                            return err(ln, "`profiles` must not be empty");
                        }
                        no_duplicates(ln, key, &out)?;
                        set_once!(profiles, (ln, out));
                    }
                    "switchless" => {
                        let items = value.as_str_list(ln, key)?;
                        let mut out = Vec::new();
                        for s in items {
                            let Some(axis) = SwitchlessAxis::parse(s) else {
                                return err(
                                    ln,
                                    format!("bad switchless axis `{s}` (want off or on:N)"),
                                );
                            };
                            out.push(axis);
                        }
                        if out.is_empty() {
                            return err(ln, "`switchless` must not be empty");
                        }
                        no_duplicates(ln, key, &out)?;
                        set_once!(switchless, (ln, out));
                    }
                    "seeds" => {
                        let out = value.as_int_list(ln, key)?;
                        if out.is_empty() {
                            return err(ln, "`seeds` must not be empty");
                        }
                        no_duplicates(ln, key, &out)?;
                        set_once!(seeds, (ln, out));
                    }
                    other => {
                        return err(
                            ln,
                            format!(
                                "unknown axis `{other}` in [matrix] \
                                 (want workloads, profiles, switchless or seeds)"
                            ),
                        )
                    }
                },
                Section::Faults => {
                    if !is_ident(key) {
                        return err(
                            ln,
                            format!("bad fault-plan name `{key}` (want [a-z0-9_-]+)"),
                        );
                    }
                    if plans.iter().any(|(n, _)| n == key) {
                        return err(ln, format!("duplicate fault plan `{key}`"));
                    }
                    let spec = value.as_str(ln, key)?;
                    let plan = match FaultPlan::parse(spec) {
                        Ok(plan) => plan,
                        Err(e) => return err(ln, format!("fault plan `{key}`: {e}")),
                    };
                    plans.push((key.to_string(), plan));
                }
                Section::Baseline => match key {
                    "faults" => {
                        set_once!(baseline_plan, (ln, value.as_str(ln, key)?.to_string()));
                    }
                    "seed" => set_once!(baseline_seed, (ln, value.as_int(ln, key)?)),
                    other => {
                        return err(
                            ln,
                            format!("unknown key `{other}` in [baseline] (want faults or seed)"),
                        )
                    }
                },
                Section::Robustness => match key {
                    "cell_deadline" => {
                        let v = value.as_str(ln, key)?;
                        match parse_duration(v) {
                            Ok(d) => set_once!(cell_deadline, d),
                            Err(e) => return err(ln, format!("`cell_deadline`: {e}")),
                        }
                    }
                    "retries" => {
                        let v = value.as_int(ln, key)?;
                        let Ok(v) = u32::try_from(v) else {
                            return err(ln, format!("`retries` out of range: {v}"));
                        };
                        set_once!(retries, v);
                    }
                    "event_budget" => {
                        set_once!(event_budget, value.as_int(ln, key)?);
                    }
                    other => {
                        return err(
                            ln,
                            format!(
                                "unknown key `{other}` in [robustness] \
                                 (want cell_deadline, retries or event_budget)"
                            ),
                        )
                    }
                },
            }
        }

        let Some((_, name)) = name else {
            return err(0, "missing `name` in [campaign]");
        };
        let Some((_, workloads)) = workloads else {
            return err(0, "missing `workloads` axis in [matrix]");
        };
        let Some((_, profiles)) = profiles else {
            return err(0, "missing `profiles` axis in [matrix]");
        };
        let Some((_, seeds)) = seeds else {
            return err(0, "missing `seeds` axis in [matrix]");
        };
        let switchless = switchless.map_or_else(|| vec![SwitchlessAxis::Off], |(_, s)| s);
        if faults_declared && plans.is_empty() {
            return err(0, "[faults] section declares no plans");
        }
        if plans.is_empty() {
            plans.push(("none".to_string(), FaultPlan::default()));
        }
        let (baseline_plan_line, baseline_plan) = match baseline_plan {
            Some((ln, p)) => (ln, p),
            None => (0, plans[0].0.clone()),
        };
        if !plans.iter().any(|(n, _)| n == &baseline_plan) {
            return err(
                baseline_plan_line,
                format!("baseline names undeclared fault plan `{baseline_plan}`"),
            );
        }
        let (baseline_seed_line, baseline_seed) = match baseline_seed {
            Some((ln, s)) => (ln, s),
            None => (0, seeds[0]),
        };
        if !seeds.contains(&baseline_seed) {
            return err(
                baseline_seed_line,
                format!("baseline seed {baseline_seed} is not in the seeds axis"),
            );
        }
        Ok(CampaignSpec {
            name,
            jobs: jobs.unwrap_or(0),
            threshold_pct: threshold.unwrap_or(10),
            workloads,
            profiles,
            switchless,
            seeds,
            plans,
            baseline_plan,
            baseline_seed,
            cell_deadline: cell_deadline.unwrap_or(Nanos::from_nanos(0)),
            retries: retries.unwrap_or(1),
            event_budget: event_budget.unwrap_or(0),
        })
    }

    /// Total cell count of the matrix.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.profiles.len()
            * self.plans.len()
            * self.switchless.len()
            * self.seeds.len()
    }

    /// Expands the axes into the deterministic cell matrix, in (workload,
    /// profile, plan, switchless, seed) nesting order. Every cell carries
    /// the index of its baseline cell — same workload, profile and
    /// switchless value, with the declared baseline plan and seed.
    #[must_use]
    pub fn expand(&self) -> Vec<CellCoord> {
        let bp = self
            .plans
            .iter()
            .position(|(n, _)| n == &self.baseline_plan)
            .expect("validated at parse");
        let bs = self
            .seeds
            .iter()
            .position(|s| *s == self.baseline_seed)
            .expect("validated at parse");
        let (l, w, e) = (self.plans.len(), self.switchless.len(), self.seeds.len());
        let mut cells = Vec::with_capacity(self.cell_count());
        for (wi, _) in self.workloads.iter().enumerate() {
            for (pi, &profile) in self.profiles.iter().enumerate() {
                for (li, _) in self.plans.iter().enumerate() {
                    for (si, &switchless) in self.switchless.iter().enumerate() {
                        for (ei, &seed) in self.seeds.iter().enumerate() {
                            let group = (wi * self.profiles.len() + pi) * l;
                            let index = ((group + li) * w + si) * e + ei;
                            let baseline = ((group + bp) * w + si) * e + bs;
                            cells.push(CellCoord {
                                index,
                                workload: wi,
                                profile,
                                plan: li,
                                switchless,
                                seed,
                                baseline,
                            });
                        }
                    }
                }
            }
        }
        cells
    }
}

impl fmt::Display for CampaignSpec {
    /// Canonical spec form: `Display` then [`CampaignSpec::parse`] is the
    /// identity, and parse-then-`Display` canonicalises (defaults become
    /// explicit, comments and whitespace are dropped).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[campaign]")?;
        writeln!(f, "name = \"{}\"", self.name)?;
        writeln!(f, "jobs = {}", self.jobs)?;
        writeln!(f, "threshold = {}", self.threshold_pct)?;
        writeln!(f)?;
        writeln!(f, "[matrix]")?;
        let quoted: Vec<String> = self.workloads.iter().map(|w| format!("\"{w}\"")).collect();
        writeln!(f, "workloads = [{}]", quoted.join(", "))?;
        let quoted: Vec<String> = self
            .profiles
            .iter()
            .map(|p| format!("\"{}\"", p.file_label()))
            .collect();
        writeln!(f, "profiles = [{}]", quoted.join(", "))?;
        let quoted: Vec<String> = self.switchless.iter().map(|s| format!("\"{s}\"")).collect();
        writeln!(f, "switchless = [{}]", quoted.join(", "))?;
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        writeln!(f, "seeds = [{}]", seeds.join(", "))?;
        writeln!(f)?;
        writeln!(f, "[faults]")?;
        for (name, plan) in &self.plans {
            writeln!(f, "{name} = \"{plan}\"")?;
        }
        writeln!(f)?;
        writeln!(f, "[baseline]")?;
        writeln!(f, "faults = \"{}\"", self.baseline_plan)?;
        writeln!(f, "seed = {}", self.baseline_seed)?;
        writeln!(f)?;
        writeln!(f, "[robustness]")?;
        writeln!(
            f,
            "cell_deadline = \"{}\"",
            fmt_duration(self.cell_deadline)
        )?;
        writeln!(f, "retries = {}", self.retries)?;
        writeln!(f, "event_budget = {}", self.event_budget)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
        # A full-surface spec: every section, every key, comments, noise.
        [campaign]
        name = "stressors"   # trailing comment
        jobs = 4
        threshold = 25

        [matrix]
        workloads = ["epc_thrash", "ecall_storm"]
        profiles = ["unpatched", "l1tf"]
        switchless = ["off", "on:2"]
        seeds = [1, 2]

        [faults]
        none = ""
        storm = "seed=7;aex-storm@call=3:count=6"

        [baseline]
        faults = "none"
        seed = 1

        [robustness]
        cell_deadline = "5s"
        retries = 2
        event_budget = 20000
    "#;

    #[test]
    fn parse_then_display_is_a_fixpoint() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        let canon = spec.to_string();
        let reparsed = CampaignSpec::parse(&canon).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(canon, reparsed.to_string(), "Display must be a fixpoint");
    }

    #[test]
    fn defaults_become_explicit_in_canonical_form() {
        let spec = CampaignSpec::parse(
            "[campaign]\nname = \"tiny\"\n\
             [matrix]\nworkloads = [\"a\"]\nprofiles = [\"spectre\"]\nseeds = [3]\n",
        )
        .unwrap();
        assert_eq!(spec.jobs, 0);
        assert_eq!(spec.threshold_pct, 10);
        assert_eq!(spec.switchless, vec![SwitchlessAxis::Off]);
        assert_eq!(spec.plans, vec![("none".to_string(), FaultPlan::default())]);
        assert_eq!(spec.baseline_plan, "none");
        assert_eq!(spec.baseline_seed, 3);
        assert_eq!(spec.cell_deadline, Nanos::from_nanos(0));
        assert_eq!(spec.retries, 1);
        assert_eq!(spec.event_budget, 0);
        let canon = spec.to_string();
        assert!(canon.contains("jobs = 0"), "{canon}");
        assert!(canon.contains("threshold = 10"), "{canon}");
        assert!(canon.contains("switchless = [\"off\"]"), "{canon}");
        assert!(canon.contains("none = \"\""), "{canon}");
        assert!(canon.contains("cell_deadline = \"0ns\""), "{canon}");
        assert!(canon.contains("retries = 1"), "{canon}");
        assert!(canon.contains("event_budget = 0"), "{canon}");
        assert_eq!(CampaignSpec::parse(&canon).unwrap(), spec);
    }

    #[test]
    fn expansion_is_the_axis_product_with_self_pointing_baselines() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), spec.cell_count());
        assert_eq!(cells.len(), 2 * 2 * 2 * 2 * 2);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            let b = &cells[c.baseline];
            assert_eq!(b.workload, c.workload);
            assert_eq!(b.profile, c.profile);
            assert_eq!(b.switchless, c.switchless);
            assert_eq!(spec.plans[b.plan].0, spec.baseline_plan);
            assert_eq!(b.seed, spec.baseline_seed);
            assert_eq!(b.baseline, b.index, "baselines point at themselves");
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_line_context() {
        for (bad, needle) in [
            (
                "[campaign]\nname = \"x\"\nbogus = 1\n",
                "unknown key `bogus`",
            ),
            ("[frobnicate]\n", "unknown section `[frobnicate]`"),
            ("name = \"x\"\n", "outside any [section]"),
            (
                "[matrix]\nplatforms = [\"x\"]\n",
                "unknown axis `platforms`",
            ),
            (
                "[matrix]\nprofiles = [\"win32\"]\n",
                "unknown profile `win32`",
            ),
            (
                "[matrix]\nswitchless = [\"maybe\"]\n",
                "bad switchless axis `maybe`",
            ),
            ("[matrix]\nseeds = [1, 1]\n", "duplicate `1` in `seeds`"),
            ("[campaign]\nname = \"x\"\nname = \"y\"\n", "duplicate key"),
            ("[campaign]\nname = \"UPPER\"\n", "bad campaign name"),
            ("[campaign]\nname = \"x\n", "unterminated string"),
            ("[campaign]\njobs = \"many\"\n", "`jobs` wants an integer"),
            ("[campaign]\nthreshold = 0\n", "positive percentage"),
            (
                "[faults]\nboom = \"frobnicate@call=1\"\n",
                "unknown fault kind",
            ),
            ("[matrix]\nworkloads = [1]\n", "wants a \"string\""),
            ("[matrix]\nseeds = [1\n", "unterminated list"),
            (
                "[robustness]\ncell_deadline = \"soon\"\n",
                "`cell_deadline`: bad fault spec: bad duration `soon`",
            ),
            (
                "[robustness]\ncell_deadline = 5\n",
                "`cell_deadline` wants a \"string\"",
            ),
            (
                "[robustness]\nretries = \"lots\"\n",
                "`retries` wants an integer",
            ),
            (
                "[robustness]\nretries = 1\nretries = 2\n",
                "duplicate key `retries`",
            ),
            (
                "[robustness]\nbudget = 5\n",
                "unknown key `budget` in [robustness]",
            ),
        ] {
            let e = CampaignSpec::parse(bad).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "`{bad}` -> `{e}` (wanted `{needle}`)"
            );
            assert!(e.line > 0, "`{bad}` should name a line, got `{e}`");
        }
    }

    #[test]
    fn structural_errors_are_rejected_without_a_line() {
        for (bad, needle) in [
            ("", "missing `name`"),
            ("[campaign]\nname = \"x\"\n", "missing `workloads`"),
            (
                "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"a\"]\n",
                "missing `profiles`",
            ),
            (
                "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"a\"]\n\
                 profiles = [\"l1tf\"]\n",
                "missing `seeds`",
            ),
        ] {
            let e = CampaignSpec::parse(bad).unwrap_err();
            assert!(e.to_string().contains(needle), "`{bad}` -> `{e}`");
        }
    }

    #[test]
    fn baselines_must_name_declared_coordinates() {
        let base = "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"a\"]\n\
                    profiles = [\"l1tf\"]\nseeds = [1, 2]\n";
        let e =
            CampaignSpec::parse(&format!("{base}[baseline]\nfaults = \"ghost\"\n")).unwrap_err();
        assert!(
            e.to_string().contains("undeclared fault plan `ghost`"),
            "{e}"
        );
        let e = CampaignSpec::parse(&format!("{base}[baseline]\nseed = 9\n")).unwrap_err();
        assert!(
            e.to_string().contains("seed 9 is not in the seeds axis"),
            "{e}"
        );
    }

    #[test]
    fn robustness_keys_parse_and_round_trip() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        assert_eq!(spec.cell_deadline, Nanos::from_nanos(5_000_000_000));
        assert_eq!(spec.retries, 2);
        assert_eq!(spec.event_budget, 20000);
        let canon = spec.to_string();
        assert!(canon.contains("cell_deadline = \"5s\""), "{canon}");
        // retries = 0 (fail fast, no second chances) is a legal corner.
        let none = CampaignSpec::parse(
            "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"a\"]\n\
             profiles = [\"l1tf\"]\nseeds = [1]\n[robustness]\nretries = 0\n",
        )
        .unwrap();
        assert_eq!(none.retries, 0);
    }

    #[test]
    fn switchless_axis_labels_round_trip() {
        for axis in [SwitchlessAxis::Off, SwitchlessAxis::On { workers: 3 }] {
            assert_eq!(SwitchlessAxis::parse(&axis.to_string()), Some(axis));
        }
        assert_eq!(SwitchlessAxis::parse("on:0"), None);
        assert_eq!(SwitchlessAxis::parse("on"), None);
        assert_eq!(SwitchlessAxis::On { workers: 2 }.file_label(), "on2");
    }
}
