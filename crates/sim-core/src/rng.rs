//! Deterministic randomness helpers.
//!
//! All workload jitter comes from explicitly seeded [`Rng`] instances so
//! every experiment is reproducible. The generator is splitmix64 — tiny,
//! fast, dependency-free (the workspace builds offline, so `rand` is not
//! available) and statistically plenty for simulation jitter. A small
//! approximate-Gaussian sampler is provided for execution-time jitter
//! without pulling in `rand_distr`.

use std::ops::Range;

use crate::time::Nanos;

/// A seeded splitmix64 generator with a `rand`-flavoured surface
/// (`gen`, `gen_range`), so call sites read the same as before the
/// offline migration.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Samples a uniform value of any [`Sample`] type.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics on empty ranges.
    pub fn gen_range<T: Sample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

/// Types [`Rng::gen`] / [`Rng::gen_range`] can produce.
pub trait Sample: Sized {
    fn sample(rng: &mut Rng) -> Self;
    fn sample_range(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! sample_uint {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
            fn sample_range(rng: &mut Rng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
sample_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
            fn sample_range(rng: &mut Rng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
sample_int!(i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn sample_range(_rng: &mut Rng, _range: Range<bool>) -> bool {
        unreachable!("bool ranges are not sampleable")
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    fn sample_range(rng: &mut Rng, range: Range<f64>) -> f64 {
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// Creates a deterministic RNG from a seed.
///
/// # Examples
///
/// ```
/// let mut a = sim_core::rng::seeded(42);
/// let mut b = sim_core::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> Rng {
    // Pre-mix so small consecutive seeds don't start in nearby states.
    Rng {
        state: seed ^ 0x6a09_e667_f3bc_c908,
    }
}

/// Samples an approximately normal value with the given mean and standard
/// deviation using the Irwin–Hall construction (sum of 12 uniforms).
///
/// The result is clamped to `[mean - 3*sd, mean + 3*sd]`.
pub fn approx_normal(rng: &mut Rng, mean: f64, sd: f64) -> f64 {
    let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    (mean + z * sd).clamp(mean - 3.0 * sd, mean + 3.0 * sd)
}

/// Samples a jittered duration around `mean` with relative standard
/// deviation `rel_sd` (e.g. `0.1` = 10%). Never returns less than one
/// quarter of the mean, so modelled work cannot collapse to zero.
///
/// # Examples
///
/// ```
/// use sim_core::Nanos;
///
/// let mut rng = sim_core::rng::seeded(7);
/// let d = sim_core::rng::jitter(&mut rng, Nanos::from_micros(10), 0.1);
/// assert!(d >= Nanos::from_nanos(2_500));
/// ```
pub fn jitter(rng: &mut Rng, mean: Nanos, rel_sd: f64) -> Nanos {
    let m = mean.as_nanos() as f64;
    let sampled = approx_normal(rng, m, m * rel_sd);
    Nanos::from_nanos(sampled.max(m / 4.0).round() as u64)
}

/// Samples a heavy-tailed duration: with probability `tail_p` the value is
/// drawn around `tail_mean`, otherwise around `mean` (both with 10% relative
/// jitter). Useful for modelling occasional slow calls (e.g. fsync hitting
/// the device, long TLS handshakes).
pub fn bimodal(rng: &mut Rng, mean: Nanos, tail_mean: Nanos, tail_p: f64) -> Nanos {
    if rng.gen::<f64>() < tail_p {
        jitter(rng, tail_mean, 0.1)
    } else {
        jitter(rng, mean, 0.1)
    }
}

/// A zipfian sampler over `0..n`: rank 0 is the most popular element and
/// rank `k` is drawn with probability proportional to `1 / (k+1)^s`.
///
/// The cumulative weights are precomputed at construction, so each sample
/// is one uniform draw plus a binary search — O(log n), deterministic for
/// a given [`Rng`] state. This is the client-popularity model of fleet
/// load generation (a few hot per-client enclaves, a long cold tail).
///
/// # Examples
///
/// ```
/// use sim_core::rng::{seeded, Zipf};
///
/// let zipf = Zipf::new(100, 0.99);
/// let mut rng = seeded(7);
/// let first = zipf.sample(&mut rng);
/// assert!(first < 100);
/// let mut rng2 = seeded(7);
/// assert_eq!(zipf.sample(&mut rng2), first);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `0..n` with exponent `s` (the classic
    /// web-traffic value is `s ≈ 0.99`; `s = 0` degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// The domain size `n`.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true — construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose cumulative weight
        // exceeds the draw; the final entry is 1.0, so the result is < n.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(123);
        let mut b = seeded(123);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = seeded(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(600..2_000u64);
            assert!((600..2_000).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_f64_is_half_on_average() {
        let mut rng = seeded(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn approx_normal_has_roughly_right_mean() {
        let mut rng = seeded(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| approx_normal(&mut rng, 100.0, 10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn jitter_never_collapses() {
        let mut rng = seeded(2);
        for _ in 0..10_000 {
            let d = jitter(&mut rng, Nanos::from_nanos(1_000), 0.5);
            assert!(d.as_nanos() >= 250);
        }
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let mut rng = seeded(3);
        let fast = Nanos::from_micros(1);
        let slow = Nanos::from_micros(100);
        let samples: Vec<Nanos> = (0..1_000)
            .map(|_| bimodal(&mut rng, fast, slow, 0.1))
            .collect();
        let slow_count = samples.iter().filter(|d| d.as_micros() > 50).count();
        assert!((50..200).contains(&slow_count), "slow count {slow_count}");
    }
}
