//! Deterministic randomness helpers.
//!
//! All workload jitter comes from explicitly seeded [`StdRng`] instances so
//! every experiment is reproducible. A small approximate-Gaussian sampler is
//! provided for execution-time jitter without pulling in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::Nanos;

/// Creates a deterministic RNG from a seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = sim_core::rng::seeded(42);
/// let mut b = sim_core::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples an approximately normal value with the given mean and standard
/// deviation using the Irwin–Hall construction (sum of 12 uniforms).
///
/// The result is clamped to `[mean - 3*sd, mean + 3*sd]`.
pub fn approx_normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    (mean + z * sd).clamp(mean - 3.0 * sd, mean + 3.0 * sd)
}

/// Samples a jittered duration around `mean` with relative standard
/// deviation `rel_sd` (e.g. `0.1` = 10%). Never returns less than one
/// quarter of the mean, so modelled work cannot collapse to zero.
///
/// # Examples
///
/// ```
/// use sim_core::Nanos;
///
/// let mut rng = sim_core::rng::seeded(7);
/// let d = sim_core::rng::jitter(&mut rng, Nanos::from_micros(10), 0.1);
/// assert!(d >= Nanos::from_nanos(2_500));
/// ```
pub fn jitter(rng: &mut StdRng, mean: Nanos, rel_sd: f64) -> Nanos {
    let m = mean.as_nanos() as f64;
    let sampled = approx_normal(rng, m, m * rel_sd);
    Nanos::from_nanos(sampled.max(m / 4.0).round() as u64)
}

/// Samples a heavy-tailed duration: with probability `tail_p` the value is
/// drawn around `tail_mean`, otherwise around `mean` (both with 10% relative
/// jitter). Useful for modelling occasional slow calls (e.g. fsync hitting
/// the device, long TLS handshakes).
pub fn bimodal(rng: &mut StdRng, mean: Nanos, tail_mean: Nanos, tail_p: f64) -> Nanos {
    if rng.gen::<f64>() < tail_p {
        jitter(rng, tail_mean, 0.1)
    } else {
        jitter(rng, mean, 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(123);
        let mut b = seeded(123);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn approx_normal_has_roughly_right_mean() {
        let mut rng = seeded(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| approx_normal(&mut rng, 100.0, 10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn jitter_never_collapses() {
        let mut rng = seeded(2);
        for _ in 0..10_000 {
            let d = jitter(&mut rng, Nanos::from_nanos(1_000), 0.5);
            assert!(d.as_nanos() >= 250);
        }
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let mut rng = seeded(3);
        let fast = Nanos::from_micros(1);
        let slow = Nanos::from_micros(100);
        let samples: Vec<Nanos> = (0..1_000).map(|_| bimodal(&mut rng, fast, slow, 0.1)).collect();
        let slow_count = samples.iter().filter(|d| d.as_micros() > 50).count();
        assert!((50..200).contains(&slow_count), "slow count {slow_count}");
    }
}
