//! Synchronisation events: the raw material for race and deadlock analysis.
//!
//! The deterministic round-robin scheduler runs exactly one logical thread
//! at a time, so a data race or a lock-order deadlock can never *manifest*
//! in a simulated run — the very property that makes traces bit-reproducible
//! also masks concurrency bugs that would fire on real hardware. The only
//! affordable way to certify concurrency under that regime is
//! schedule-generalizing static analysis over the synchronisation events of
//! one observed run.
//!
//! This module is the event channel such analysis feeds on: a [`SyncBus`]
//! that instrumented components (SDK mutexes and condvars, the logical
//! thread scheduler, the switchless rings) publish [`SyncEvent`]s to, and a
//! [`Shared<T>`] cell wrapper that workloads use to tag the shared state
//! whose accesses the analysis should check.
//!
//! The bus is silent unless an observer is attached: with no observer,
//! [`SyncBus::emit`] returns without touching the clock or allocating, so
//! un-instrumented runs stay byte-identical to builds that predate this
//! module.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::time::Nanos;

/// Thread id used for sync events emitted from outside any logical thread
/// (the external driver, e.g. `main`).
pub const EXTERNAL_THREAD: u64 = u64::MAX;

/// What kind of synchronisation action a [`SyncEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncOp {
    /// A lock was acquired; `object` is the lock, `aux` encodes the
    /// [`LockPath`](crate::sync) shape (`(count << 8) | path_code`).
    LockAcquire,
    /// A lock was released; `target` is the woken waiter, if any.
    LockRelease,
    /// A thread began waiting on a condvar; `object` is the condvar,
    /// `aux` is the id of the mutex released for the wait.
    CondWait,
    /// A condvar waiter was signalled; `object` is the condvar, `target`
    /// the woken thread.
    CondSignal,
    /// A logical thread was spawned; `thread` is the parent (or
    /// [`EXTERNAL_THREAD`]), `target` the child.
    ThreadSpawn,
    /// A logical thread ran to completion; `thread` is the finished thread.
    ThreadJoin,
    /// A request was posted to a switchless ring; `object` is the ring.
    RingPost,
    /// A switchless worker completed a request; `object` is the ring,
    /// `target` the caller the result is handed back to.
    RingComplete,
    /// A tagged shared cell was read; `object` is the cell.
    SharedRead,
    /// A tagged shared cell was written; `object` is the cell.
    SharedWrite,
}

impl SyncOp {
    /// All operations, in stable code order.
    pub const ALL: [SyncOp; 10] = [
        SyncOp::LockAcquire,
        SyncOp::LockRelease,
        SyncOp::CondWait,
        SyncOp::CondSignal,
        SyncOp::ThreadSpawn,
        SyncOp::ThreadJoin,
        SyncOp::RingPost,
        SyncOp::RingComplete,
        SyncOp::SharedRead,
        SyncOp::SharedWrite,
    ];

    /// Stable on-disk/event code for this operation.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            SyncOp::LockAcquire => 0,
            SyncOp::LockRelease => 1,
            SyncOp::CondWait => 2,
            SyncOp::CondSignal => 3,
            SyncOp::ThreadSpawn => 4,
            SyncOp::ThreadJoin => 5,
            SyncOp::RingPost => 6,
            SyncOp::RingComplete => 7,
            SyncOp::SharedRead => 8,
            SyncOp::SharedWrite => 9,
        }
    }

    /// Decodes an operation code; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u8) -> Option<SyncOp> {
        SyncOp::ALL.get(code as usize).copied()
    }

    /// The human label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SyncOp::LockAcquire => "lock-acquire",
            SyncOp::LockRelease => "lock-release",
            SyncOp::CondWait => "cond-wait",
            SyncOp::CondSignal => "cond-signal",
            SyncOp::ThreadSpawn => "thread-spawn",
            SyncOp::ThreadJoin => "thread-join",
            SyncOp::RingPost => "ring-post",
            SyncOp::RingComplete => "ring-complete",
            SyncOp::SharedRead => "shared-read",
            SyncOp::SharedWrite => "shared-write",
        }
    }
}

/// One synchronisation event, as observed by the logger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncEvent {
    /// Logical thread performing the action (or [`EXTERNAL_THREAD`]).
    pub thread: u64,
    /// What happened.
    pub op: SyncOp,
    /// The synchronisation object acted on (lock, condvar, ring, cell), if
    /// any. Ids are allocated per machine by [`SyncBus::alloc_object`].
    pub object: Option<u64>,
    /// The other thread involved (woken waiter, spawned child, caller), if
    /// any.
    pub target: Option<u64>,
    /// Operation-specific payload (see [`SyncOp`] variants).
    pub aux: u64,
    /// Human name for the object, carried only by events whose emitter
    /// knows one (shared cells); empty otherwise.
    pub label: String,
    /// Virtual time of the event.
    pub time: Nanos,
}

/// Observer callback for [`SyncEvent`]s (the logger's hook).
pub type SyncObserver = Arc<dyn Fn(&SyncEvent) + Send + Sync>;

/// The per-machine synchronisation event channel.
///
/// Instrumented components hold an `Arc<SyncBus>` and call
/// [`emit`](SyncBus::emit); the logger attaches an observer when sync-event
/// tracking is enabled. Object ids come from a per-bus counter, so under
/// the deterministic scheduler the id assignment — and therefore the trace
/// — is reproducible.
pub struct SyncBus {
    clock: Clock,
    next_object: AtomicU64,
    observer: Mutex<Option<SyncObserver>>,
}

impl std::fmt::Debug for SyncBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncBus")
            .field("clock", &self.clock)
            .field("next_object", &self.next_object)
            .field("active", &self.is_active())
            .finish()
    }
}

impl SyncBus {
    /// Creates a bus stamping events with `clock`.
    pub fn new(clock: Clock) -> SyncBus {
        SyncBus {
            clock,
            next_object: AtomicU64::new(0),
            observer: Mutex::new(None),
        }
    }

    /// Allocates a fresh synchronisation object id.
    pub fn alloc_object(&self) -> u64 {
        self.next_object.fetch_add(1, Ordering::SeqCst)
    }

    /// Installs (or clears) the event observer.
    pub fn set_observer(&self, observer: Option<SyncObserver>) {
        *self.observer.lock().unwrap() = observer;
    }

    /// Whether an observer is currently attached. Emitters can use this to
    /// skip building event payloads entirely.
    pub fn is_active(&self) -> bool {
        self.observer.lock().unwrap().is_some()
    }

    /// Publishes an event (stamped with the current virtual time) to the
    /// observer, if one is attached. A no-op otherwise.
    pub fn emit(
        &self,
        thread: u64,
        op: SyncOp,
        object: Option<u64>,
        target: Option<u64>,
        aux: u64,
        label: &str,
    ) {
        let observer = self.observer.lock().unwrap().clone();
        if let Some(obs) = observer {
            obs(&SyncEvent {
                thread,
                op,
                object,
                target,
                aux,
                label: label.to_string(),
                time: self.clock.now(),
            });
        }
    }
}

/// A shared cell whose accesses are visible to the race analysis.
///
/// Workloads wrap cross-thread state in `Shared<T>` instead of a bare
/// `Mutex<T>`: every [`read`](Shared::read) and [`write`](Shared::write)
/// emits a [`SyncOp::SharedRead`]/[`SyncOp::SharedWrite`] event tagged with
/// the cell's name, so the happens-before and lockset analyses can tell
/// whether the access is ordered by the locks actually held.
///
/// The inner mutex only guards the *memory* of the simulation process (the
/// analysis deliberately models the access as unprotected unless a
/// simulated lock orders it).
#[derive(Debug)]
pub struct Shared<T> {
    bus: Arc<SyncBus>,
    id: u64,
    name: String,
    value: Mutex<T>,
}

impl<T> Shared<T> {
    /// Creates a named shared cell registered on `bus`.
    pub fn new(bus: Arc<SyncBus>, name: &str, value: T) -> Shared<T> {
        let id = bus.alloc_object();
        Shared {
            bus,
            id,
            name: name.to_string(),
            value: Mutex::new(value),
        }
    }

    /// The cell's synchronisation object id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The cell's name, as it appears in findings.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reads the cell as `thread`, emitting a [`SyncOp::SharedRead`].
    pub fn read<R>(&self, thread: u64, f: impl FnOnce(&T) -> R) -> R {
        self.bus.emit(
            thread,
            SyncOp::SharedRead,
            Some(self.id),
            None,
            0,
            &self.name,
        );
        f(&self.value.lock().unwrap())
    }

    /// Writes the cell as `thread`, emitting a [`SyncOp::SharedWrite`].
    pub fn write<R>(&self, thread: u64, f: impl FnOnce(&mut T) -> R) -> R {
        self.bus.emit(
            thread,
            SyncOp::SharedWrite,
            Some(self.id),
            None,
            0,
            &self.name,
        );
        f(&mut self.value.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codes_roundtrip() {
        for op in SyncOp::ALL {
            assert_eq!(SyncOp::from_code(op.code()), Some(op));
            assert!(!op.label().is_empty());
        }
        assert_eq!(SyncOp::from_code(99), None);
    }

    #[test]
    fn emit_without_observer_is_silent() {
        let bus = SyncBus::new(Clock::new());
        assert!(!bus.is_active());
        // Must not panic or block.
        bus.emit(0, SyncOp::LockAcquire, Some(1), None, 0, "");
    }

    #[test]
    fn emit_reaches_observer_with_timestamp() {
        let clock = Clock::new();
        let bus = Arc::new(SyncBus::new(clock.clone()));
        let seen: Arc<Mutex<Vec<SyncEvent>>> = Arc::default();
        let sink = Arc::clone(&seen);
        bus.set_observer(Some(Arc::new(move |ev: &SyncEvent| {
            sink.lock().unwrap().push(ev.clone());
        })));
        clock.advance(Nanos::from_nanos(42));
        bus.emit(3, SyncOp::CondSignal, Some(7), Some(1), 9, "");
        bus.set_observer(None);
        bus.emit(3, SyncOp::CondSignal, Some(7), Some(1), 9, "");
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].thread, 3);
        assert_eq!(seen[0].op, SyncOp::CondSignal);
        assert_eq!(seen[0].object, Some(7));
        assert_eq!(seen[0].target, Some(1));
        assert_eq!(seen[0].aux, 9);
        assert_eq!(seen[0].time, Nanos::from_nanos(42));
    }

    #[test]
    fn shared_cells_emit_tagged_accesses() {
        let bus = Arc::new(SyncBus::new(Clock::new()));
        let seen: Arc<Mutex<Vec<SyncEvent>>> = Arc::default();
        let sink = Arc::clone(&seen);
        bus.set_observer(Some(Arc::new(move |ev: &SyncEvent| {
            sink.lock().unwrap().push(ev.clone());
        })));
        let cell = Shared::new(Arc::clone(&bus), "counter", 0u64);
        cell.write(0, |v| *v += 1);
        assert_eq!(cell.read(1, |v| *v), 1);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].op, SyncOp::SharedWrite);
        assert_eq!(seen[0].label, "counter");
        assert_eq!(seen[1].op, SyncOp::SharedRead);
        assert_eq!(seen[1].object, Some(cell.id()));
    }

    #[test]
    fn object_ids_are_sequential() {
        let bus = SyncBus::new(Clock::new());
        assert_eq!(bus.alloc_object(), 0);
        assert_eq!(bus.alloc_object(), 1);
    }
}
