//! Right-sizing an enclave with the working-set estimator (§4.2, §5.2.4):
//! measure how many pages a SecureKeeper proxy enclave actually touches at
//! start-up vs in steady state, and derive how many such enclaves fit the
//! EPC without paging.
//!
//! ```sh
//! cargo run -p sgx-perf-examples --bin working_set
//! ```

use sim_core::HwProfile;
use workloads::securekeeper::{working_set_probe, SecureKeeperConfig};
use workloads::Harness;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let harness = Harness::new(HwProfile::Unpatched);
    let config = SecureKeeperConfig::default();

    println!("estimating the working set of one SecureKeeper proxy enclave...");
    println!("(permissions stripped; every page access faults once per interval)");
    let (startup, steady) = working_set_probe(&harness, &config, 200)?;

    let enclave_info = {
        // The probe created enclave #1 on this machine.
        harness.machine().enclave_info(sgx_sim::EnclaveId(1))?
    };
    println!(
        "\nenclave size:           {} pages (power of two, incl. padding)",
        enclave_info.total_pages
    );
    println!(
        "start-up working set:   {startup} pages = {:.2} MiB (paper: 322)",
        startup as f64 / 256.0
    );
    println!(
        "steady-state working set: {steady} pages = {:.2} MiB (paper: 94)",
        steady as f64 / 256.0
    );

    let epc = harness.machine().epc_capacity();
    println!(
        "\nEPC holds {} usable pages -> {} such enclaves fit at steady state (paper: 249)",
        epc,
        epc / steady.max(1)
    );
    println!(
        "lesson (§3.5/§5.2.4): the binary size overstates the real footprint; \
         size to the measured working set, not the enclave image."
    );
    Ok(())
}
