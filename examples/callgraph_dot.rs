//! Decoupled tracing and analysis (§4): trace the nginx+TaLoS workload,
//! serialise the trace to a file (the SQLite stand-in), load it back in a
//! "separate process", and render the Figure 5 call graph as Graphviz DOT.
//!
//! ```sh
//! cargo run -p sgx-perf-examples --bin callgraph_dot
//! dot -Tsvg talos_callgraph.dot -o talos_callgraph.svg   # optional
//! ```

use sgx_perf::{Analyzer, Logger, LoggerConfig, TraceDb};
use sim_core::HwProfile;
use workloads::talos::{run, TalosConfig};
use workloads::Harness;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- "process 1": run the application with the logger preloaded ---
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let result = run(
        &harness,
        &TalosConfig {
            requests: 300,
            ..TalosConfig::default()
        },
    )?;
    println!(
        "served {} HTTPS requests through the TaLoS enclave",
        result.stats.operations
    );

    let trace_path = std::env::temp_dir().join("talos_trace.evdb");
    logger.finish().save(&trace_path)?;
    println!("trace written to {}", trace_path.display());

    // --- "process 2": load the trace and analyse it offline ---
    let trace = TraceDb::load(&trace_path)?;
    println!(
        "loaded {} ecall and {} ocall events",
        trace.ecalls.len(),
        trace.ocalls.len()
    );
    let analyzer = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
    let graph = analyzer.call_graph();
    let dot_path = "talos_callgraph.dot";
    std::fs::write(dot_path, graph.to_dot())?;
    println!(
        "call graph: {} nodes, {} edges -> {dot_path}",
        graph.nodes.len(),
        graph.edges.len()
    );

    // A taste of the graph: the busiest enclave crossings.
    let mut edges: Vec<_> = graph.edges.iter().filter(|e| !e.indirect).collect();
    edges.sort_by_key(|e| std::cmp::Reverse(e.count));
    println!("\nbusiest direct edges:");
    for e in edges.iter().take(8) {
        let name = |c| {
            graph
                .nodes
                .iter()
                .find(|n| n.call == c)
                .map(|n| n.name.as_str())
                .unwrap_or("?")
        };
        println!(
            "  {:<44} -> {:<44} {:>7}",
            name(e.from),
            name(e.to),
            e.count
        );
    }
    println!(
        "\nverdict (§5.2.1): the OpenSSL API's error queue and per-chunk socket \
         I/O make it a poor enclave interface."
    );
    Ok(())
}
