//! Quickstart: build an enclave application on the simulated SDK, attach
//! sgx-perf without modifying it, run a workload, and read the analysis.
//!
//! ```sh
//! cargo run -p sgx-perf-examples --bin quickstart
//! ```

use std::sync::Arc;

use sgx_perf::{Analyzer, Logger, LoggerConfig};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::{Clock, HwProfile, Nanos};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated SGX machine and its SDK runtime.
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let runtime = Runtime::new(machine);

    // 2. The enclave interface, written in EDL — exactly as with the real
    //    SDK's sgx_edger8r.
    let spec = sgx_edl::parse(
        r#"
        enclave {
            trusted {
                public uint64_t ecall_hash_chunk([in, size=len] char* data, size_t len);
            };
            untrusted {
                void ocall_progress(uint64_t done);
            };
        };
        "#,
    )?;

    // 3. Attach sgx-perf — the LD_PRELOAD step happens before the
    //    application creates its enclave, so the logger sees everything.
    //    No application changes are needed.
    let logger = Logger::attach(&runtime, LoggerConfig::default());

    // 4. Build the enclave and register the trusted implementation.
    let enclave = runtime.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_hash_chunk", |ctx, data| {
        // Hash the chunk (~3 ns/byte of trusted compute)...
        ctx.compute(Nanos::from_nanos(3 * data.in_bytes as u64))?;
        // ...and report progress via a (wastefully short) ocall.
        ctx.ocall("ocall_progress", &mut CallData::new(data.scalar))?;
        data.ret = data.scalar.wrapping_mul(0x9e3779b97f4a7c15);
        Ok(())
    })?;
    let mut table = OcallTableBuilder::new(enclave.spec());
    table.register("ocall_progress", |host, _| {
        host.compute(Nanos::from_nanos(200));
        Ok(())
    })?;
    let table = Arc::new(table.build()?);

    // 5. Run the workload: hash 2,000 small chunks.
    let tcx = ThreadCtx::main();
    for i in 0..2_000u64 {
        let mut data = CallData::new(i).with_in_bytes(256);
        runtime.ecall(&tcx, enclave.id(), "ecall_hash_chunk", &table, &mut data)?;
    }

    // 6. Analyse the trace and print the report.
    let trace = logger.finish();
    let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
    println!("{report}");
    println!(
        "hint: the short per-chunk ecalls and the progress ocall should both \
         be flagged — batch the chunks and drop (or batch) the progress calls."
    );
    Ok(())
}
