//! The full sgx-perf workflow on the SQLite workload (§5.2.2): profile the
//! naïve enclavised database, read the analyzer's recommendation, apply it
//! (the merged lseek+write ocall) and measure the speedup.
//!
//! ```sh
//! cargo run -p sgx-perf-examples --bin profile_and_optimise
//! ```

use sgx_perf::{Analyzer, Logger, LoggerConfig, Recommendation};
use sim_core::HwProfile;
use workloads::sqlitedb::{run, SqliteConfig};
use workloads::{Harness, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inserts = 5_000;

    // Step 1: profile the published (naïve) enclave design.
    println!("profiling the enclavised database ({inserts} inserts)...");
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let naive = run(
        &harness,
        &SqliteConfig {
            inserts,
            variant: Variant::Enclave,
            ..SqliteConfig::default()
        },
    )?;
    let trace = logger.finish();
    println!("  {naive}");

    // Step 2: what does sgx-perf say?
    let report = Analyzer::new(&trace, harness.profile().cost_model()).analyze();
    println!("\nsgx-perf findings:");
    for d in &report.detections {
        println!("  {d}");
    }
    let merge = report.detections.iter().find(|d| {
        matches!(&d.recommendation, Recommendation::MergeCalls { with } if with == "ocall_lseek")
    });
    match merge {
        Some(d) => println!("\n=> applying: {} on `{}`", d.recommendation, d.name),
        None => println!("\n(no merge recommendation found — unexpected)"),
    }

    // Step 3: apply the recommendation (the optimised variant fuses every
    // lseek+write pair into one ocall) and re-measure — both sides without
    // the logger, for a fair comparison.
    let harness = Harness::new(HwProfile::Unpatched);
    let baseline = run(
        &harness,
        &SqliteConfig {
            inserts,
            variant: Variant::Enclave,
            ..SqliteConfig::default()
        },
    )?;
    let harness = Harness::new(HwProfile::Unpatched);
    let optimised = run(
        &harness,
        &SqliteConfig {
            inserts,
            variant: Variant::Optimised,
            ..SqliteConfig::default()
        },
    )?;
    println!("  un-instrumented {baseline}");
    println!("  un-instrumented {optimised}");
    println!(
        "\nspeedup from the recommendation: {:.2}x (paper: 1.33x)",
        optimised.throughput() / baseline.throughput()
    );

    // Reference: the native (no enclave) upper bound.
    let harness = Harness::new(HwProfile::Unpatched);
    let native = run(
        &harness,
        &SqliteConfig {
            inserts,
            variant: Variant::Native,
            ..SqliteConfig::default()
        },
    )?;
    println!("  reference {native}");
    Ok(())
}
