//! SGX v2 features (the paper's future-work notes, implemented): dynamic
//! enclave memory via `EAUG` and AEX exit-type visibility.
//!
//! §2.3.3: "With SGX v2 ... the enclave can be created small and as soon
//! as stack or heap are exhausted, new pages may be added on-demand."
//! §4.1.4: "SGX v2 will enable this, as the SGX subsystem can be
//! instructed to record the exit type into the enclave state."
//!
//! ```sh
//! cargo run -p sgx-perf-examples --bin sgx_v2_dynamic_memory
//! ```

use std::sync::Arc;

use sgx_perf::{AexMode, Logger, LoggerConfig};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, Machine, MachineParams, SgxVersion};
use sim_core::{Clock, HwProfile, Nanos};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An SGX v2 machine.
    let machine = Arc::new(Machine::with_params(
        Clock::new(),
        HwProfile::Unpatched,
        MachineParams {
            sgx_version: SgxVersion::V2,
            ..MachineParams::default()
        },
    ));
    let runtime = Runtime::new(Arc::clone(&machine));

    // A deliberately tiny enclave: 16 KiB of heap.
    let spec =
        sgx_edl::parse("enclave { trusted { public uint64_t ecall_ingest(uint64_t pages); }; };")?;
    let enclave = runtime.create_enclave(
        &spec,
        &EnclaveConfig {
            heap_kib: 16,
            ..EnclaveConfig::default()
        },
    )?;
    enclave.register_ecall("ecall_ingest", |ctx, data| {
        // The trusted allocator ran out of heap: grow on demand.
        let fresh = ctx.sbrk(data.scalar as usize)?;
        ctx.touch(fresh.clone(), AccessKind::Write)?;
        ctx.compute(Nanos::from_micros(20))?;
        data.ret = fresh.start as u64;
        Ok(())
    })?;
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);

    let logger = Logger::attach(&runtime, LoggerConfig::with_aex(AexMode::Trace));
    let info = machine.enclave_info(enclave.id())?;
    println!(
        "enclave built: {} pages total, heap starts at 4 pages ({} KiB)",
        info.total_pages, 16
    );

    let tcx = ThreadCtx::main();
    for round in 1..=3u64 {
        let mut data = CallData::new(4);
        runtime.ecall(&tcx, enclave.id(), "ecall_ingest", &table, &mut data)?;
        println!("round {round}: EAUG'd 4 pages at page index {}", data.ret);
    }

    // A long call to gather AEXs whose causes are now visible (v2 + debug
    // enclave).
    enclave.register_ecall("ecall_ingest", |ctx, data| {
        ctx.compute(Nanos::from_millis(12))?;
        data.ret = 0;
        Ok(())
    })?;
    runtime.ecall(
        &tcx,
        enclave.id(),
        "ecall_ingest",
        &table,
        &mut CallData::new(0),
    )?;

    let trace = logger.finish();
    println!("\nAEX rows with v2-visible causes:");
    for row in trace.aex.iter() {
        println!(
            "  t={} cause={:?} (opaque on SGX v1)",
            sim_core::Nanos::from_nanos(row.time_ns),
            row.cause
        );
    }
    Ok(())
}
