#!/usr/bin/env bash
# A/B perf bench: runs the switchless closed loop and the chaos fixture,
# diffs candidate against baseline with `sgxperf diff`, and emits
# BENCH_diff.json (the switchless verdict — the CI perf-gate artifact).
#
# Exit status: non-zero if the switchless optimisation stopped being an
# improvement, if the chaos regression stopped being detected (exit != 3),
# or on any build/run failure.
#
# Also runs the fleet scenario at acceptance scale (1000 enclaves x 100k
# requests, byte-identity asserted across two runs) and emits
# BENCH_fleet.json (spin-up rate, fleet throughput, peak EPC eviction
# rate). Set FLEET_SCALE=smoke|tiny to shrink it.
#
# Also runs the engine throughput bench (legacy OS-thread engine vs. fast
# coroutine engine) and emits BENCH_engine.json; fails unless the fast
# engine clears the SGXPERF_ENGINE_SPEEDUP_FLOOR (default 5x) and the
# campaign runner clears SGXPERF_SCALING_FLOOR (default 0.7x ideal).
#
# Also runs the declarative stressor sweep (specs/stressors.toml) serially
# and at full parallelism and emits BENCH_campaign.json (cells/sec,
# parallel efficiency, per-stressor headline metrics, plus the
# supervision overheads: resume_validate_ms — a full-archive --resume
# that re-runs nothing — and flaky_retry_ms — one flaky cell's
# fail/backoff/pass cycle).
#
# usage: scripts/bench.sh [output-dir] [profile] [requests]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-target/ab-traces}"
PROFILE="${2:-unpatched}"
REQUESTS="${3:-1000}"
BENCH_JSON="${BENCH_JSON:-BENCH_diff.json}"
FLEET_JSON="${FLEET_JSON:-BENCH_fleet.json}"
FLEET_SCALE="${FLEET_SCALE:-full}"
ENGINE_JSON="${ENGINE_JSON:-BENCH_engine.json}"
CAMPAIGN_JSON="${CAMPAIGN_JSON:-BENCH_campaign.json}"
CAMPAIGN_SPEC="${CAMPAIGN_SPEC:-specs/stressors.toml}"

echo "== build (release, offline)"
cargo build --release --offline -p sgx-perf -p sgxperf-cli -p workloads --examples --bins

SGXPERF=target/release/sgxperf

echo "== record A/B trace pairs ($PROFILE, $REQUESTS requests)"
cargo run --release --offline -q -p workloads --example ab_traces -- \
    "$OUT_DIR" "$PROFILE" "$REQUESTS"

echo "== switchless diff (must NOT regress)"
"$SGXPERF" diff "$OUT_DIR/switchless-before.evdb" "$OUT_DIR/switchless-after.evdb" \
    --json > "$BENCH_JSON"
"$SGXPERF" diff "$OUT_DIR/switchless-before.evdb" "$OUT_DIR/switchless-after.evdb"

echo "== chaos diff (must regress with exit 3)"
set +e
"$SGXPERF" diff "$OUT_DIR/chaos-baseline.evdb" "$OUT_DIR/chaos-faulted.evdb"
CHAOS_EXIT=$?
set -e
if [ "$CHAOS_EXIT" -ne 3 ]; then
    echo "FAIL: chaos diff exited $CHAOS_EXIT, expected 3 (regression)" >&2
    exit 1
fi

echo "== fleet smoke ($FLEET_SCALE scale, $PROFILE, byte-identity across 2 runs)"
cargo run --release --offline -q -p workloads --example fleet_smoke -- \
    "$OUT_DIR" "$FLEET_SCALE" "$PROFILE"

# fleet_smoke labels the Foreshadow profile `l1tf` in trace filenames.
case "$PROFILE" in
    foreshadow) FLEET_TRACE="$OUT_DIR/fleet-l1tf.evdb" ;;
    *) FLEET_TRACE="$OUT_DIR/fleet-$PROFILE.evdb" ;;
esac

echo "== fleet report ($FLEET_TRACE)"
"$SGXPERF" report "$FLEET_TRACE" > /dev/null
"$SGXPERF" fleet "$FLEET_TRACE" --top 10

echo "== fleet bench ($FLEET_SCALE scale, $PROFILE)"
cargo run --release --offline -q -p workloads --example fleet_bench -- \
    "$FLEET_JSON" "$FLEET_SCALE" "$PROFILE"

echo "== engine bench (legacy vs fast, throughput floors enforced)"
cargo run --release --offline -q -p workloads --example engine_bench -- \
    "$ENGINE_JSON"

echo "== campaign bench ($CAMPAIGN_SPEC, serial vs all cores, resume + retry overheads)"
cargo run --release --offline -q -p workloads --example campaign_bench -- \
    "$CAMPAIGN_JSON" "$CAMPAIGN_SPEC"

echo "wrote $BENCH_JSON, $FLEET_JSON, $ENGINE_JSON and $CAMPAIGN_JSON"
