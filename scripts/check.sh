#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before every commit.
# All cargo invocations are --offline; the workspace builds with no registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test"
cargo test -q --offline

echo "All checks passed."
